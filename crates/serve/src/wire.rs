//! The wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every frame is `[len: u32 big-endian][len bytes of JSON]`. The JSON
//! dialect is `obase-ser` (deterministic printing, no external crates);
//! dynamic [`Value`]s ride in the same tagged-array encoding the WAL uses
//! (`["i", 5]`, `["l", [...]]`), so a wire capture is readable with the
//! same eyes as a log dump.
//!
//! Decoding is *total* in the WAL sense: any byte sequence decodes to a
//! frame or to a typed [`WireError`], never a panic — the protocol test
//! battery truncates valid frames at every byte offset to hold the codec
//! to that. A frame that decodes structurally but carries an unknown
//! `"t"` tag is an [`WireError::UnknownTag`]; one whose payload is not
//! UTF-8 is a [`WireError::BadUtf8`]; a length prefix past
//! [`MAX_FRAME_LEN`] is refused before any payload is read, so a hostile
//! client cannot make the server allocate unboundedly.

use obase_core::ids::ObjectId;
use obase_core::value::Value;
use obase_exec::{Expr, ObjRef, Program, TxnSpec};
use obase_ser::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

/// Protocol version carried in `hello`/`welcome`. A server refuses a
/// mismatched hello with a typed `error` frame rather than guessing.
pub const PROTOCOL_VERSION: i64 = 1;

/// Hard cap on one frame's JSON payload: 4 MiB. Far above any real
/// transaction tree, far below a memory-exhaustion vector.
pub const MAX_FRAME_LEN: u32 = 4 << 20;

/// A typed wire failure. Every decoding path lands here — never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// An I/O failure reading or writing the stream.
    Io(String),
    /// A length prefix larger than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The stream ended inside a frame (torn tail): `got` of `want` bytes.
    Truncated {
        /// Bytes actually available.
        got: usize,
        /// Bytes the frame declared.
        want: usize,
    },
    /// The payload is not UTF-8.
    BadUtf8(String),
    /// The payload is not valid JSON.
    BadJson(String),
    /// The frame parsed as JSON but its `"t"` tag names no known frame.
    UnknownTag(String),
    /// The frame parsed and its tag is known, but a field is missing or
    /// has the wrong shape.
    BadFrame(String),
    /// The peer sent a well-formed frame that violates the session
    /// protocol (e.g. an `error` frame in reply, or a non-`welcome`
    /// handshake answer). Client-side only.
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Truncated { got, want } => {
                write!(f, "torn frame: {got} of {want} bytes")
            }
            WireError::BadUtf8(e) => write!(f, "frame payload is not UTF-8: {e}"),
            WireError::BadJson(e) => write!(f, "frame payload is not JSON: {e}"),
            WireError::UnknownTag(t) => write!(f, "unknown frame tag {t:?}"),
            WireError::BadFrame(e) => write!(f, "malformed frame: {e}"),
            WireError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why the server refused a submission. Rejects are *answers*, not
/// failures: the session stays open and the client may retry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is full — backpressure. Retry later.
    QueueFull {
        /// The queue depth that was full.
        depth: usize,
    },
    /// The server is draining (or shutting down) and admits nothing new.
    Draining,
    /// The transaction tree itself was refused (unknown object or method,
    /// arity mismatch, local operation or unresolved parameter at top
    /// level, or an oversized tree).
    Invalid(String),
}

impl RejectReason {
    /// Stable snake_case key for the reason, carried on the wire.
    pub fn key(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::Draining => "draining",
            RejectReason::Invalid(_) => "invalid",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth})")
            }
            RejectReason::Draining => write!(f, "server is draining"),
            RejectReason::Invalid(e) => write!(f, "invalid transaction: {e}"),
        }
    }
}

/// One protocol frame. Clients send `hello`, `submit`, `status`,
/// `reconcile` and `goodbye`; servers answer with `welcome`, `result`,
/// `reject`, `status_report`, `reconciled` and `error`.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client handshake: who is connecting and which protocol it speaks.
    Hello {
        /// Free-form client label (shows up in nothing but logs).
        client: String,
        /// The protocol version the client speaks.
        protocol: i64,
    },
    /// Server handshake answer.
    Welcome {
        /// The server's label.
        server: String,
        /// The protocol version the server speaks.
        protocol: i64,
        /// Number of objects in the served object base.
        objects: usize,
    },
    /// Submit one transaction tree. `id` is client-chosen and echoes back
    /// on the matching `result`/`reject`; it must be unique among the
    /// session's outstanding submissions.
    Submit {
        /// Client-chosen correlation id.
        id: u64,
        /// Client-chosen transaction label (the server uniquifies it).
        name: String,
        /// The transaction tree, scenario-DSL shaped.
        body: Program,
    },
    /// The settled outcome of an admitted submission.
    Result {
        /// Correlation id of the submission.
        id: u64,
        /// `true` if the transaction committed; `false` if it exhausted
        /// its retry budget and gave up.
        committed: bool,
        /// Admission-to-settlement latency in microseconds.
        latency_us: u64,
    },
    /// The submission was refused; nothing ran.
    Reject {
        /// Correlation id of the submission.
        id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Ask for the health/status document.
    Status,
    /// The health/status document: queue + config + merged `RunMetrics` +
    /// latency phases.
    StatusReport {
        /// The status document (shape documented in `docs/SERVING.md`).
        body: Json,
    },
    /// Declarative reconcile: the desired [`ServeConfig`] as a JSON
    /// object; absent fields keep their current value.
    ///
    /// [`ServeConfig`]: crate::ServeConfig
    Reconcile {
        /// The desired-config document.
        config: Json,
    },
    /// Reconcile answer: which fields actually changed (empty = the
    /// desired state already held; reconciling is idempotent).
    Reconciled {
        /// Names of the changed fields.
        changed: Vec<String>,
    },
    /// A typed server-side error. Fatal to the session.
    Error {
        /// Stable error code (`"bad-hello"`, `"bad-config"`, ...).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Polite close.
    Goodbye,
}

impl Frame {
    /// The frame's `"t"` tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Welcome { .. } => "welcome",
            Frame::Submit { .. } => "submit",
            Frame::Result { .. } => "result",
            Frame::Reject { .. } => "reject",
            Frame::Status => "status",
            Frame::StatusReport { .. } => "status_report",
            Frame::Reconcile { .. } => "reconcile",
            Frame::Reconciled { .. } => "reconciled",
            Frame::Error { .. } => "error",
            Frame::Goodbye => "goodbye",
        }
    }
}

// ---------------------------------------------------------------------------
// Value / program codec (tagged arrays, same dialect as the WAL).

/// Encodes a [`Value`] as a tagged array.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Unit => Json::Array(vec![Json::str("u")]),
        Value::Bool(b) => Json::Array(vec![Json::str("b"), Json::Bool(*b)]),
        Value::Int(i) => Json::Array(vec![Json::str("i"), Json::Int(*i)]),
        Value::Str(s) => Json::Array(vec![Json::str("s"), Json::str(s.clone())]),
        Value::Obj(o) => Json::Array(vec![Json::str("o"), Json::Int(i64::from(o.0))]),
        Value::List(items) => Json::Array(vec![
            Json::str("l"),
            Json::Array(items.iter().map(value_to_json).collect()),
        ]),
        Value::Map(map) => Json::Array(vec![
            Json::str("m"),
            Json::Object(
                map.iter()
                    .map(|(k, v)| (k.clone(), value_to_json(v)))
                    .collect(),
            ),
        ]),
    }
}

/// Decodes a [`Value`] from its tagged-array encoding.
pub fn value_from_json(j: &Json) -> Result<Value, WireError> {
    let bad = |d: &str| WireError::BadFrame(format!("bad value encoding: {d}"));
    let arr = j.as_array().ok_or_else(|| bad("not a tagged array"))?;
    let tag = arr
        .first()
        .and_then(Json::as_str)
        .ok_or_else(|| bad("no string tag"))?;
    let payload = arr.get(1);
    match (tag, payload) {
        ("u", None) => Ok(Value::Unit),
        ("b", Some(p)) => p.as_bool().map(Value::Bool).ok_or_else(|| bad("b")),
        ("i", Some(p)) => p.as_int().map(Value::Int).ok_or_else(|| bad("i")),
        ("s", Some(p)) => p
            .as_str()
            .map(|s| Value::Str(s.to_owned()))
            .ok_or_else(|| bad("s")),
        ("o", Some(p)) => p
            .as_int()
            .and_then(|i| u32::try_from(i).ok())
            .map(|i| Value::Obj(ObjectId(i)))
            .ok_or_else(|| bad("o")),
        ("l", Some(p)) => p
            .as_array()
            .ok_or_else(|| bad("l"))?
            .iter()
            .map(value_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map(Value::List),
        ("m", Some(p)) => p
            .as_object()
            .ok_or_else(|| bad("m"))?
            .iter()
            .map(|(k, v)| value_from_json(v).map(|v| (k.clone(), v)))
            .collect::<Result<BTreeMap<_, _>, _>>()
            .map(Value::Map),
        (other, _) => Err(bad(&format!("unknown value tag {other:?}"))),
    }
}

fn expr_to_json(e: &Expr) -> Json {
    match e {
        Expr::Const(v) => Json::Array(vec![Json::str("c"), value_to_json(v)]),
        Expr::Param(i) => Json::Array(vec![Json::str("p"), Json::Int(*i as i64)]),
    }
}

fn expr_from_json(j: &Json) -> Result<Expr, WireError> {
    let bad = |d: &str| WireError::BadFrame(format!("bad expr encoding: {d}"));
    let arr = j.as_array().ok_or_else(|| bad("not a tagged array"))?;
    match (arr.first().and_then(Json::as_str), arr.get(1)) {
        (Some("c"), Some(v)) => value_from_json(v).map(Expr::Const),
        (Some("p"), Some(i)) => i
            .as_int()
            .and_then(|i| usize::try_from(i).ok())
            .map(Expr::Param)
            .ok_or_else(|| bad("param index")),
        _ => Err(bad("expected [\"c\", value] or [\"p\", n]")),
    }
}

fn objref_to_json(o: &ObjRef) -> Json {
    match o {
        ObjRef::Const(id) => Json::Array(vec![Json::str("o"), Json::Int(i64::from(id.0))]),
        ObjRef::Param(i) => Json::Array(vec![Json::str("p"), Json::Int(*i as i64)]),
    }
}

fn objref_from_json(j: &Json) -> Result<ObjRef, WireError> {
    let bad = |d: &str| WireError::BadFrame(format!("bad object ref: {d}"));
    let arr = j.as_array().ok_or_else(|| bad("not a tagged array"))?;
    match (arr.first().and_then(Json::as_str), arr.get(1)) {
        (Some("o"), Some(i)) => i
            .as_int()
            .and_then(|i| u32::try_from(i).ok())
            .map(|i| ObjRef::Const(ObjectId(i)))
            .ok_or_else(|| bad("object id")),
        (Some("p"), Some(i)) => i
            .as_int()
            .and_then(|i| usize::try_from(i).ok())
            .map(ObjRef::Param)
            .ok_or_else(|| bad("param index")),
        _ => Err(bad("expected [\"o\", id] or [\"p\", n]")),
    }
}

/// Encodes a transaction [`Program`] in the scenario-DSL shape: tagged
/// arrays `["local", op, args]`, `["invoke", obj, method, args]`,
/// `["seq", [...]]`, `["par", [...]]`.
pub fn program_to_json(p: &Program) -> Json {
    match p {
        Program::Local { op, args } => Json::Array(vec![
            Json::str("local"),
            Json::str(op.clone()),
            Json::Array(args.iter().map(expr_to_json).collect()),
        ]),
        Program::Invoke {
            object,
            method,
            args,
        } => Json::Array(vec![
            Json::str("invoke"),
            objref_to_json(object),
            Json::str(method.clone()),
            Json::Array(args.iter().map(expr_to_json).collect()),
        ]),
        Program::Seq(ps) => Json::Array(vec![
            Json::str("seq"),
            Json::Array(ps.iter().map(program_to_json).collect()),
        ]),
        Program::Par(ps) => Json::Array(vec![
            Json::str("par"),
            Json::Array(ps.iter().map(program_to_json).collect()),
        ]),
    }
}

/// Decodes a [`Program`] from its tagged-array encoding.
pub fn program_from_json(j: &Json) -> Result<Program, WireError> {
    let bad = |d: &str| WireError::BadFrame(format!("bad program encoding: {d}"));
    let arr = j.as_array().ok_or_else(|| bad("not a tagged array"))?;
    let tag = arr
        .first()
        .and_then(Json::as_str)
        .ok_or_else(|| bad("no string tag"))?;
    let exprs = |j: &Json| -> Result<Vec<Expr>, WireError> {
        j.as_array()
            .ok_or_else(|| bad("args is not an array"))?
            .iter()
            .map(expr_from_json)
            .collect()
    };
    let progs = |j: &Json| -> Result<Vec<Program>, WireError> {
        j.as_array()
            .ok_or_else(|| bad("block is not an array"))?
            .iter()
            .map(program_from_json)
            .collect()
    };
    match tag {
        "local" => {
            let op = arr
                .get(1)
                .and_then(Json::as_str)
                .ok_or_else(|| bad("local needs an op name"))?;
            let args = exprs(arr.get(2).ok_or_else(|| bad("local needs args"))?)?;
            Ok(Program::Local {
                op: op.to_owned(),
                args,
            })
        }
        "invoke" => {
            let object = objref_from_json(arr.get(1).ok_or_else(|| bad("invoke needs a target"))?)?;
            let method = arr
                .get(2)
                .and_then(Json::as_str)
                .ok_or_else(|| bad("invoke needs a method name"))?;
            let args = exprs(arr.get(3).ok_or_else(|| bad("invoke needs args"))?)?;
            Ok(Program::Invoke {
                object,
                method: method.to_owned(),
                args,
            })
        }
        "seq" => progs(arr.get(1).ok_or_else(|| bad("seq needs a block"))?).map(Program::Seq),
        "par" => progs(arr.get(1).ok_or_else(|| bad("par needs a block"))?).map(Program::Par),
        other => Err(bad(&format!("unknown program tag {other:?}"))),
    }
}

/// Encodes a named transaction.
pub fn txn_to_json(t: &TxnSpec) -> Json {
    Json::object([
        ("name", Json::str(t.name.clone())),
        ("body", program_to_json(&t.body)),
    ])
}

/// Decodes a named transaction.
pub fn txn_from_json(j: &Json) -> Result<TxnSpec, WireError> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::BadFrame("transaction needs a name".into()))?;
    let body = program_from_json(
        j.get("body")
            .ok_or_else(|| WireError::BadFrame("transaction needs a body".into()))?,
    )?;
    Ok(TxnSpec {
        name: name.to_owned(),
        body,
    })
}

// ---------------------------------------------------------------------------
// Frame codec.

fn reject_to_json(r: &RejectReason) -> Json {
    let mut fields = vec![("kind", Json::str(r.key()))];
    match r {
        RejectReason::QueueFull { depth } => {
            fields.push(("depth", Json::Int(*depth as i64)));
        }
        RejectReason::Invalid(detail) => {
            fields.push(("detail", Json::str(detail.clone())));
        }
        RejectReason::Draining => {}
    }
    Json::object(fields)
}

fn reject_from_json(j: &Json) -> Result<RejectReason, WireError> {
    let bad = |d: &str| WireError::BadFrame(format!("bad reject reason: {d}"));
    match j.get("kind").and_then(Json::as_str) {
        Some("queue_full") => {
            let depth = j
                .get("depth")
                .and_then(Json::as_int)
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| bad("queue_full needs a depth"))?;
            Ok(RejectReason::QueueFull { depth })
        }
        Some("draining") => Ok(RejectReason::Draining),
        Some("invalid") => Ok(RejectReason::Invalid(
            j.get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        )),
        Some(other) => Err(bad(&format!("unknown kind {other:?}"))),
        None => Err(bad("missing kind")),
    }
}

/// Renders a frame as its JSON document (without the length prefix).
pub fn frame_to_json(f: &Frame) -> Json {
    let t = ("t", Json::str(f.tag()));
    match f {
        Frame::Hello { client, protocol } => Json::object([
            t,
            ("client", Json::str(client.clone())),
            ("protocol", Json::Int(*protocol)),
        ]),
        Frame::Welcome {
            server,
            protocol,
            objects,
        } => Json::object([
            t,
            ("server", Json::str(server.clone())),
            ("protocol", Json::Int(*protocol)),
            ("objects", Json::Int(*objects as i64)),
        ]),
        Frame::Submit { id, name, body } => Json::object([
            t,
            ("id", Json::Int(*id as i64)),
            ("name", Json::str(name.clone())),
            ("body", program_to_json(body)),
        ]),
        Frame::Result {
            id,
            committed,
            latency_us,
        } => Json::object([
            t,
            ("id", Json::Int(*id as i64)),
            ("committed", Json::Bool(*committed)),
            ("latency_us", Json::Int(*latency_us as i64)),
        ]),
        Frame::Reject { id, reason } => Json::object([
            t,
            ("id", Json::Int(*id as i64)),
            ("reason", reject_to_json(reason)),
        ]),
        Frame::Status => Json::object([t]),
        Frame::StatusReport { body } => Json::object([t, ("body", body.clone())]),
        Frame::Reconcile { config } => Json::object([t, ("config", config.clone())]),
        Frame::Reconciled { changed } => Json::object([
            t,
            (
                "changed",
                Json::Array(changed.iter().map(|c| Json::str(c.clone())).collect()),
            ),
        ]),
        Frame::Error { code, detail } => Json::object([
            t,
            ("code", Json::str(code.clone())),
            ("detail", Json::str(detail.clone())),
        ]),
        Frame::Goodbye => Json::object([t]),
    }
}

/// Parses a frame from its JSON document.
pub fn frame_from_json(j: &Json) -> Result<Frame, WireError> {
    let obj = j
        .as_object()
        .ok_or_else(|| WireError::BadFrame("frame is not a JSON object".into()))?;
    let tag = obj
        .get("t")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::BadFrame("frame has no \"t\" tag".into()))?;
    let need_str = |k: &str| {
        j.get(k)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| WireError::BadFrame(format!("{tag} needs a string {k:?}")))
    };
    let need_int = |k: &str| {
        j.get(k)
            .and_then(Json::as_int)
            .ok_or_else(|| WireError::BadFrame(format!("{tag} needs an integer {k:?}")))
    };
    let need_u64 = |k: &str| {
        need_int(k).and_then(|i| {
            u64::try_from(i).map_err(|_| WireError::BadFrame(format!("{tag}: {k} is negative")))
        })
    };
    match tag {
        "hello" => Ok(Frame::Hello {
            client: need_str("client")?,
            protocol: need_int("protocol")?,
        }),
        "welcome" => Ok(Frame::Welcome {
            server: need_str("server")?,
            protocol: need_int("protocol")?,
            objects: need_int("objects").and_then(|i| {
                usize::try_from(i)
                    .map_err(|_| WireError::BadFrame("welcome: objects is negative".into()))
            })?,
        }),
        "submit" => Ok(Frame::Submit {
            id: need_u64("id")?,
            name: need_str("name")?,
            body: program_from_json(
                j.get("body")
                    .ok_or_else(|| WireError::BadFrame("submit needs a body".into()))?,
            )?,
        }),
        "result" => Ok(Frame::Result {
            id: need_u64("id")?,
            committed: j
                .get("committed")
                .and_then(Json::as_bool)
                .ok_or_else(|| WireError::BadFrame("result needs a bool \"committed\"".into()))?,
            latency_us: need_u64("latency_us")?,
        }),
        "reject" => Ok(Frame::Reject {
            id: need_u64("id")?,
            reason: reject_from_json(
                j.get("reason")
                    .ok_or_else(|| WireError::BadFrame("reject needs a reason".into()))?,
            )?,
        }),
        "status" => Ok(Frame::Status),
        "status_report" => Ok(Frame::StatusReport {
            body: j
                .get("body")
                .cloned()
                .ok_or_else(|| WireError::BadFrame("status_report needs a body".into()))?,
        }),
        "reconcile" => Ok(Frame::Reconcile {
            config: j
                .get("config")
                .cloned()
                .ok_or_else(|| WireError::BadFrame("reconcile needs a config".into()))?,
        }),
        "reconciled" => Ok(Frame::Reconciled {
            changed: j
                .get("changed")
                .and_then(Json::as_array)
                .ok_or_else(|| WireError::BadFrame("reconciled needs a changed list".into()))?
                .iter()
                .map(|c| {
                    c.as_str().map(str::to_owned).ok_or_else(|| {
                        WireError::BadFrame("reconciled: changed entries are strings".into())
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "error" => Ok(Frame::Error {
            code: need_str("code")?,
            detail: need_str("detail")?,
        }),
        "goodbye" => Ok(Frame::Goodbye),
        other => Err(WireError::UnknownTag(other.to_owned())),
    }
}

/// Encodes a frame as length-prefixed bytes.
pub fn encode_frame(f: &Frame) -> Vec<u8> {
    let payload = frame_to_json(f).to_string().into_bytes();
    debug_assert!(payload.len() as u64 <= u64::from(MAX_FRAME_LEN));
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame from the front of `buf`, returning the frame and the
/// number of bytes consumed. Total: every input produces a frame or a
/// typed error.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.is_empty() {
        return Err(WireError::Closed);
    }
    if buf.len() < 4 {
        return Err(WireError::Truncated {
            got: buf.len(),
            want: 4,
        });
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let want = len as usize;
    let rest = &buf[4..];
    if rest.len() < want {
        return Err(WireError::Truncated {
            got: rest.len(),
            want,
        });
    }
    let payload =
        std::str::from_utf8(&rest[..want]).map_err(|e| WireError::BadUtf8(e.to_string()))?;
    let json = Json::parse(payload).map_err(|e| WireError::BadJson(e.render(payload)))?;
    frame_from_json(&json).map(|f| (f, 4 + want))
}

/// Reads exactly `buf.len()` bytes; distinguishes a clean EOF before any
/// byte (`Ok(0)`) from a torn read.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(got),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(got)
}

/// Reads one frame from a stream. A clean close at a frame boundary is
/// [`WireError::Closed`]; a close inside a frame is a typed
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut prefix = [0u8; 4];
    match read_full(r, &mut prefix)? {
        0 => return Err(WireError::Closed),
        4 => {}
        got => return Err(WireError::Truncated { got, want: 4 }),
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let want = len as usize;
    let mut payload = vec![0u8; want];
    let got = read_full(r, &mut payload)?;
    if got < want {
        return Err(WireError::Truncated { got, want });
    }
    let text = std::str::from_utf8(&payload).map_err(|e| WireError::BadUtf8(e.to_string()))?;
    let json = Json::parse(text).map_err(|e| WireError::BadJson(e.render(text)))?;
    frame_from_json(&json)
}

/// Writes one frame to a stream.
pub fn write_frame(w: &mut impl Write, f: &Frame) -> Result<(), WireError> {
    w.write_all(&encode_frame(f))
        .and_then(|()| w.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}
