//! Declarative server configuration and the reconcile diff.
//!
//! A [`ServeConfig`] is the server's *desired state*: scheduler line-up,
//! worker/shard counts, admission-queue depth, ingress-batching knobs.
//! Reconciling means handing the server a new desired state; the server
//! diffs it against the current one, swaps atomically, and reports which
//! fields actually changed. Reconciling the same config twice is a no-op
//! the second time — the changed-field list is empty — which is what makes
//! a retrying operator loop safe.
//!
//! Config changes take effect at the next *batch boundary*: the batch in
//! flight finishes under the old scheduler and worker pool (the pool is
//! per-batch, so "drain and resize" falls out of the batching design), and
//! everything admitted afterwards runs under the new one. No in-flight
//! transaction is ever dropped by a reconcile.

use obase_runtime::{ConfigError, SchedulerSpec};
use obase_ser::Json;
use std::time::Duration;

/// The server's desired state.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// The scheduler every ingress batch runs under.
    pub scheduler: SchedulerSpec,
    /// Worker threads of the parallel backend.
    pub workers: usize,
    /// Bound of the admission queue; a full queue rejects with
    /// [`RejectReason::QueueFull`](crate::RejectReason::QueueFull).
    pub queue_depth: usize,
    /// Most transactions one ingress batch may carry.
    pub batch_max: usize,
    /// How long the executor lingers for more submissions once a batch has
    /// its first one (group-commit-style ingress batching).
    pub linger: Duration,
    /// Per-transaction retry budget inside a batch.
    pub retries: u32,
    /// Store shards of the parallel backend; `0` keeps the backend default.
    pub store_shards: usize,
    /// Settle read-only transactions through the MVCC snapshot read path.
    pub mvcc: bool,
    /// Retain each batch's committed history so
    /// [`Server::shutdown`](crate::Server::shutdown) can hand back the
    /// merged admitted history for the serialisability oracle. Costs
    /// memory proportional to everything ever admitted — leave off for
    /// long-running load tests.
    pub keep_history: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scheduler: SchedulerSpec::n2pl_operation(),
            workers: 4,
            queue_depth: 256,
            batch_max: 64,
            linger: Duration::from_millis(2),
            retries: 8,
            store_shards: 0,
            mvcc: false,
            keep_history: true,
        }
    }
}

impl ServeConfig {
    /// Validates the config with the runtime's typed errors.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.scheduler.validate()?;
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.batch_max == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        Ok(())
    }

    /// Names the fields in which `desired` differs from `self` — the
    /// reconcile report. Empty means the desired state already holds.
    pub fn diff(&self, desired: &ServeConfig) -> Vec<&'static str> {
        let mut changed = Vec::new();
        if self.scheduler != desired.scheduler {
            changed.push("scheduler");
        }
        if self.workers != desired.workers {
            changed.push("workers");
        }
        if self.queue_depth != desired.queue_depth {
            changed.push("queue_depth");
        }
        if self.batch_max != desired.batch_max {
            changed.push("batch_max");
        }
        if self.linger != desired.linger {
            changed.push("linger");
        }
        if self.retries != desired.retries {
            changed.push("retries");
        }
        if self.store_shards != desired.store_shards {
            changed.push("store_shards");
        }
        if self.mvcc != desired.mvcc {
            changed.push("mvcc");
        }
        if self.keep_history != desired.keep_history {
            changed.push("keep_history");
        }
        changed
    }

    /// Renders the config as JSON (the shape `apply_json` accepts, and the
    /// shape the status document embeds).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("scheduler", self.scheduler.to_json()),
            ("workers", Json::Int(self.workers as i64)),
            ("queue_depth", Json::Int(self.queue_depth as i64)),
            ("batch_max", Json::Int(self.batch_max as i64)),
            ("linger_ms", Json::Int(self.linger.as_millis() as i64)),
            ("retries", Json::Int(i64::from(self.retries))),
            ("store_shards", Json::Int(self.store_shards as i64)),
            ("mvcc", Json::Bool(self.mvcc)),
            ("keep_history", Json::Bool(self.keep_history)),
        ])
    }

    /// Builds the desired config a `reconcile` frame describes: `self`
    /// overridden by every field present in `json`. Absent fields keep
    /// their current value, so a frame may carry only what it wants to
    /// change while still being declarative (the result is a full desired
    /// state, not a delta applied blindly).
    pub fn apply_json(&self, json: &Json) -> Result<ServeConfig, String> {
        let mut next = self.clone();
        if let Some(spec) = json.get("scheduler") {
            next.scheduler =
                SchedulerSpec::from_json(spec).map_err(|e| format!("bad scheduler spec: {e}"))?;
        }
        let usize_field = |key: &str| -> Result<Option<usize>, String> {
            match json.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_int()
                    .and_then(|i| usize::try_from(i).ok())
                    .map(Some)
                    .ok_or_else(|| format!("{key} must be a non-negative integer")),
            }
        };
        if let Some(v) = usize_field("workers")? {
            next.workers = v;
        }
        if let Some(v) = usize_field("queue_depth")? {
            next.queue_depth = v;
        }
        if let Some(v) = usize_field("batch_max")? {
            next.batch_max = v;
        }
        if let Some(v) = usize_field("linger_ms")? {
            next.linger = Duration::from_millis(v as u64);
        }
        if let Some(v) = usize_field("retries")? {
            next.retries = u32::try_from(v).map_err(|_| "retries must fit in u32".to_owned())?;
        }
        if let Some(v) = usize_field("store_shards")? {
            next.store_shards = v;
        }
        if let Some(v) = json.get("mvcc") {
            next.mvcc = v
                .as_bool()
                .ok_or_else(|| "mvcc must be a boolean".to_owned())?;
        }
        if let Some(v) = json.get("keep_history") {
            next.keep_history = v
                .as_bool()
                .ok_or_else(|| "keep_history must be a boolean".to_owned())?;
        }
        Ok(next)
    }
}
