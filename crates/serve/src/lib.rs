//! # obase-serve — the TCP front end
//!
//! Millions of users arrive over sockets, not function calls. This crate
//! puts the object-base runtime behind a `std::net` TCP server speaking a
//! small length-prefixed JSON protocol (`obase-ser` dialect, no external
//! crates): clients submit whole nested-transaction trees in the
//! scenario-DSL shape, the server multiplexes every session onto the
//! parallel backend through a bounded admission queue with
//! group-commit-style ingress batching, and the Hadzilacos & Hadzilacos
//! serialisability oracle still holds over *everything that was admitted*
//! — the per-batch committed histories merge into one admitted history
//! ([`merge_histories`]) the test battery verifies wholesale.
//!
//! * [`wire`] — frames, the length-prefixed codec, and typed
//!   [`WireError`]s (decoding is total: torn, oversized, non-UTF-8 or
//!   unknown-tag frames all land in typed errors, never panics);
//! * [`config`] — the declarative [`ServeConfig`] (scheduler line-up,
//!   worker/shard counts, queue depth, batching knobs) and its reconcile
//!   diff;
//! * [`server`] — the [`Server`]: listener, per-session threads, the
//!   admission queue (full = typed [`RejectReason::QueueFull`]
//!   backpressure), the batch executor with committed-state carry-forward
//!   between batches, idempotent [`Server::reconcile`] hot-swapping, and
//!   the health/status document;
//! * [`client`] — a blocking, pipelining [`ServeClient`];
//! * [`oracle`] — [`merge_histories`], turning the per-batch histories
//!   into the one admitted history the oracle judges.
//!
//! ```
//! use obase_serve::{ServeClient, ServeConfig, Server};
//!
//! let scenario = obase_scenario::by_name("hot-queue").expect("library scenario");
//! let server = Server::for_scenario(&scenario, ServeConfig::default(), "127.0.0.1:0")
//!     .expect("bind");
//! let mut client = ServeClient::connect(server.addr(), "doc").expect("connect");
//! // Submit one of the scenario's own compiled transactions over the wire.
//! let txn = scenario.compile().transactions.remove(0);
//! let outcome = client.submit_wait(&txn.name, txn.body).expect("settle");
//! assert!(outcome.is_settled());
//! let summary = server.shutdown();
//! assert_eq!(summary.admitted, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod oracle;
pub mod server;
pub mod wire;

pub use client::{ServeClient, SubmitOutcome};
pub use config::ServeConfig;
pub use oracle::{check_admitted, merge_histories};
pub use server::{ServeError, ServeSummary, Server};
pub use wire::{Frame, RejectReason, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
