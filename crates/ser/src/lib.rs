//! # obase-ser — a minimal JSON value, writer and parser
//!
//! The runtime facade treats scheduler configurations as *data*: a
//! [`SchedulerSpec`](https://docs.rs/obase-runtime) can be rendered to JSON,
//! stored, diffed and parsed back. This crate supplies the tiny JSON kernel
//! that makes that possible without external dependencies: a [`Json`] value
//! type, a compact writer and a recursive-descent parser.
//!
//! The subset is deliberately small but complete for the workspace's needs:
//! objects, arrays, strings (with `\uXXXX` escapes), integers, floats,
//! booleans and null.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Numbers are split into integers and floats so that identifiers and
/// counters round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with sorted keys (deterministic output).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a decimal point so the value parses back as a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// The 1-based line and column of the failure offset within `input`.
    ///
    /// The column counts bytes from the start of the line, which matches how
    /// editors address ASCII-dominated JSON; an offset past the end of the
    /// input (end-of-document errors) reports the position just after the
    /// last byte.
    pub fn line_col(&self, input: &str) -> (usize, usize) {
        let upto = &input.as_bytes()[..self.offset.min(input.len())];
        let line = upto.iter().filter(|b| **b == b'\n').count() + 1;
        let col = upto.len() - upto.iter().rposition(|b| *b == b'\n').map_or(0, |p| p + 1) + 1;
        (line, col)
    }

    /// Renders the error with its line/column position and a caret-marked
    /// excerpt of the offending line, for human-facing diagnostics:
    ///
    /// ```text
    /// JSON parse error at line 3, column 14: expected ':' after object key
    ///   "clients" 4,
    ///              ^
    /// ```
    ///
    /// Long lines are windowed around the failure column so the caret stays
    /// visible. `input` must be the same document the error came from.
    pub fn render(&self, input: &str) -> String {
        let (line, col) = self.line_col(input);
        let text = input.lines().nth(line - 1).unwrap_or("");
        // Window the line to at most 60 bytes around the failure column.
        let start = (col - 1).saturating_sub(30).min(text.len());
        let end = (start + 60).min(text.len());
        // Don't split multi-byte characters at the window edges.
        let start = (0..=start)
            .rev()
            .find(|i| text.is_char_boundary(*i))
            .unwrap_or(0);
        let end = (end..=text.len())
            .find(|i| text.is_char_boundary(*i))
            .unwrap_or(text.len());
        let excerpt = &text[start..end];
        let caret_at = (col - 1).saturating_sub(start).min(excerpt.len());
        format!(
            "JSON parse error at line {line}, column {col}: {}\n  {}{excerpt}{}\n  {}^",
            self.message,
            if start > 0 { "…" } else { "" },
            if end < text.len() { "…" } else { "" },
            " ".repeat(caret_at + if start > 0 { 1 } else { 0 }),
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            let c = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow; combine into one code point.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(br"\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape (cursor on the `u`),
    /// leaving the cursor on the last digit.
    fn hex_escape(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("malformed number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = Json::object([
            ("kind", Json::str("n2pl")),
            ("granularity", Json::str("step")),
            ("clients", Json::Int(8)),
            ("throughput", Json::Float(0.5)),
            ("flags", Json::Array(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : -2.5 } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_float(),
            Some(-2.5)
        );
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash \u{1}";
        let text = Json::Str(s.to_owned()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_parse_and_reject_when_unpaired() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("4.0").unwrap(), Json::Float(4.0));
        // And a whole float prints with a decimal point so it parses back as
        // a float.
        assert_eq!(Json::Float(4.0).to_string(), "4.0");
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn parse_error_renders_line_column_and_caret() {
        let doc = "{\n  \"name\": \"x\",\n  \"clients\" 4\n}";
        let e = Json::parse(doc).unwrap_err();
        let (line, col) = e.line_col(doc);
        assert_eq!(line, 3);
        assert_eq!(col, 13);
        let rendered = e.render(doc);
        assert!(rendered.contains("line 3, column 13"), "{rendered}");
        // The excerpt is the offending line, and the caret sits under the
        // failure column.
        let mut lines = rendered.lines();
        lines.next();
        assert_eq!(lines.next(), Some("    \"clients\" 4"));
        assert_eq!(lines.next(), Some("              ^"));
    }

    #[test]
    fn parse_error_render_windows_long_lines() {
        let doc = format!("[{} x]", "1,".repeat(200));
        let e = Json::parse(&doc).unwrap_err();
        let rendered = e.render(&doc);
        // The excerpt is clipped on both sides and keeps the caret visible.
        assert!(rendered.contains('…'), "{rendered}");
        assert!(
            rendered.lines().last().unwrap().ends_with('^'),
            "{rendered}"
        );
        let excerpt = rendered.lines().nth(1).unwrap();
        assert!(excerpt.len() < 80, "{rendered}");
    }

    #[test]
    fn parse_error_at_end_of_input_renders() {
        let doc = "{\"a\": ";
        let e = Json::parse(doc).unwrap_err();
        let (line, col) = e.line_col(doc);
        assert_eq!((line, col), (1, 7));
        assert!(e.render(doc).ends_with('^'));
    }
}
