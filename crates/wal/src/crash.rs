//! Crash-fault helpers for the kill-at-any-point tests.
//!
//! A crash is not a scheduler-level fault (those live in the scenario
//! engine's fault injector): it is a *file-level* event that happens after
//! the process died, so it is modelled as a post-run mutation of the log —
//! truncate it at an arbitrary byte (the kernel got some prefix of our
//! writes onto disk) or flip a byte (a torn sector). The scenario DSL's
//! `CrashPlan` picks the cut point as a seeded fraction of the log; these
//! helpers apply it.

use crate::log::log_path;
use std::fs::OpenOptions;
use std::io;
use std::path::Path;

/// Length of the log file in `dir`.
pub fn log_len(dir: &Path) -> io::Result<u64> {
    Ok(std::fs::metadata(log_path(dir))?.len())
}

/// Truncates the log in `dir` to `len` bytes, as if the process had died
/// with only that prefix durable. Returns the resulting length.
pub fn truncate_log(dir: &Path, len: u64) -> io::Result<u64> {
    let path = log_path(dir);
    let file = OpenOptions::new().write(true).open(&path)?;
    let actual = file.metadata()?.len().min(len);
    file.set_len(actual)?;
    Ok(actual)
}

/// Truncates the log in `dir` to `fraction` (clamped to `[0, 1]`) of its
/// length — the scenario `CrashPlan`'s cut rule. Returns the cut offset.
pub fn truncate_log_fraction(dir: &Path, fraction: f64) -> io::Result<u64> {
    let len = log_len(dir)?;
    let cut = ((len as f64) * fraction.clamp(0.0, 1.0)).floor() as u64;
    truncate_log(dir, cut)
}

/// Flips one byte of the log in `dir` at `offset` (clamped into the file) —
/// a torn-sector corruption. Recovery must stop at, not replay through, the
/// damaged frame. Returns the offset actually flipped, or `None` for an
/// empty log.
pub fn corrupt_log_byte(dir: &Path, offset: u64) -> io::Result<Option<u64>> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let path = log_path(dir);
    let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(None);
    }
    let at = offset.min(len - 1);
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(at))?;
    file.read_exact(&mut byte)?;
    byte[0] ^= 0xff;
    file.seek(SeekFrom::Start(at))?;
    file.write_all(&byte)?;
    Ok(Some(at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::WalRecord;
    use crate::log::{log_path, scan, WalWriter};
    use obase_core::ids::ExecId;

    fn write_sample(dir: &Path) {
        let mut w = WalWriter::create(&log_path(dir), 1).unwrap();
        for i in 0..4u32 {
            w.append(&WalRecord::BeginTop {
                exec: ExecId(i),
                name: format!("T{i}"),
            })
            .unwrap();
            w.append(&WalRecord::CommitTop { exec: ExecId(i) }).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn truncation_helpers_cut_where_asked() {
        let dir = crate::scratch_dir("crash-cut");
        write_sample(&dir);
        let full = log_len(&dir).unwrap();
        assert_eq!(truncate_log(&dir, full + 100).unwrap(), full);
        assert_eq!(truncate_log_fraction(&dir, 0.5).unwrap(), full / 2);
        assert_eq!(log_len(&dir).unwrap(), full / 2);
        assert_eq!(truncate_log_fraction(&dir, 0.0).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_by_scan() {
        let dir = crate::scratch_dir("crash-flip");
        write_sample(&dir);
        let intact = scan(&log_path(&dir)).unwrap();
        assert!(!intact.torn);
        let mid = log_len(&dir).unwrap() / 2;
        assert!(corrupt_log_byte(&dir, mid).unwrap().is_some());
        let damaged = scan(&log_path(&dir)).unwrap();
        assert!(damaged.torn, "flip at {mid} went unnoticed");
        assert!(damaged.records.len() < intact.records.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
