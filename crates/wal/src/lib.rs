//! # obase-wal — the durable execution backend
//!
//! The third backend of the object base: the same interleaving simulator as
//! `obase-exec`, but every history-shaping event is streamed through a
//! **write-ahead log** as it happens, so a run survives a crash. The crate
//! layers over the shared lifecycle kernel exactly like the other two
//! backends — it contributes only what durability is about:
//!
//! * [`codec`] — the on-disk representation: every lifecycle event (and the
//!   commit record, which only durable recorders persist) as a compact JSON
//!   document in the `obase-ser` dialect.
//! * [`log`] — framing and the group-commit protocol: each record is
//!   `[len][checksum][payload]`, appended through a buffered [`WalWriter`]
//!   that fsyncs once per *window* of commit records rather than once per
//!   commit. The reader tolerates torn tails: the first frame that fails its
//!   length or checksum ends the log.
//! * [`recorder`] — [`WalRecorder`], a
//!   [`HistoryRecorder`](obase_core::record::HistoryRecorder) that tees every
//!   event into both the in-memory [`HistoryBuilder`](obase_core::builder::HistoryBuilder)
//!   and the log.
//! * [`backend`] — [`execute_durable`], the drop-in durable counterpart of
//!   [`obase_exec::execute`], and [`WalBackend::recover`], which re-derives a
//!   consistent state from whatever prefix of the log survived: committed
//!   transactions are replayed, uncommitted ones are rolled back
//!   (`crash_rollback` in the abort histogram), and committed transactions
//!   whose reads no longer replay — they observed state of a transaction
//!   that died in flight — are cascade-rolled-back until the surviving
//!   history is consistent. The recovered history is held to the same
//!   Definition-3 oracle as a live run.
//! * [`crash`] — fault helpers for the kill-at-any-point tests: truncate a
//!   log at an arbitrary byte offset, or flip a single byte.
//!
//! ## Quickstart
//!
//! ```
//! use obase_wal::{execute_durable, scratch_dir, WalBackend};
//!
//! let workload = obase_workload::queues(&obase_workload::QueueParams {
//!     queues: 1,
//!     producers: 2,
//!     consumers: 2,
//!     preload: 2,
//!     seed: 7,
//! });
//! let mut sched = obase_lock::N2plScheduler::step_locks();
//! let dir = scratch_dir("doc");
//! let result = execute_durable(
//!     &workload,
//!     &mut sched,
//!     &obase_exec::ExecParams::default(),
//!     &dir,
//!     8, // fsync once per 8 commit records
//! )?;
//!
//! // Recovery from the full log reproduces the run's committed history.
//! let recovered = WalBackend::new(workload.def.base().clone()).recover(&dir)?;
//! recovered.assert_serialisable();
//! assert_eq!(recovered.committed.len(), result.metrics.committed);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), obase_wal::WalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod crash;
pub mod log;
pub mod recorder;

pub use backend::{execute_durable, execute_durable_observed, Recovered, WalBackend};
pub use codec::WalRecord;
pub use log::{log_path, LogScan, WalWriter};
pub use recorder::WalRecorder;

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors of the durable backend.
#[derive(Debug)]
pub enum WalError {
    /// An I/O error while writing or reading the log.
    Io(std::io::Error),
    /// The log's header does not match the object base handed to recovery
    /// (different objects — the log belongs to another workload).
    BaseMismatch(String),
    /// The log's first complete record is not a header — the file is some
    /// other format, not one of our logs. (A log torn *inside* the header
    /// frame, or never written at all, is not this error: that is a
    /// total-loss crash and recovery returns the base state.)
    MissingHeader(PathBuf),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "write-ahead log I/O error: {e}"),
            WalError::BaseMismatch(why) => {
                write!(f, "log does not belong to this object base: {why}")
            }
            WalError::MissingHeader(p) => {
                write!(
                    f,
                    "first record in {} is not a header (foreign log)",
                    p.display()
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Creates a fresh scratch directory for a write-ahead log under the system
/// temp dir (the workspace has no tempfile dependency by design). The caller
/// owns cleanup; names are unique per process and call.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "obase-wal-{tag}-{pid}-{n}",
        pid = std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir under temp");
    dir
}
