//! The durable recorder: tees every lifecycle event into the in-memory
//! history builder *and* the write-ahead log.
//!
//! [`WalRecorder`] is the durable backend's implementation of the recording
//! contract ([`HistoryRecorder`]). It wraps the same [`HistoryBuilder`] the
//! simulator uses — so the run still produces its in-memory history with
//! final step ids handed out immediately — and appends the equivalent
//! [`WalRecord`] for each event. Because the simulated machine is
//! single-threaded, append order equals builder allocation order, which is
//! what lets recovery replay a log prefix through a fresh builder and land
//! on identical ids.
//!
//! The recording trait returns no `Result`, so the first I/O error is
//! stashed and recording continues in memory only; the run's caller
//! surfaces the stashed error from [`WalRecorder::finish`] instead of
//! silently pretending the log is complete.

use crate::codec::{WalRecord, FORMAT_VERSION};
use crate::log::WalWriter;
use obase_core::builder::HistoryBuilder;
use obase_core::ids::{ExecId, ObjectId, StepId};
use obase_core::op::Operation;
use obase_core::record::HistoryRecorder;
use obase_core::value::Value;
use std::io;

/// A [`HistoryRecorder`] that makes the run durable. See the module docs.
#[derive(Debug)]
pub struct WalRecorder {
    builder: HistoryBuilder,
    writer: WalWriter,
    error: Option<io::Error>,
}

impl WalRecorder {
    /// Wraps a builder and a log writer, appending the header record (the
    /// object-base fingerprint recovery validates against).
    ///
    /// The builder must be fresh and must have automatic program-order
    /// recording disabled, as the kernel records explicit edges.
    pub fn new(builder: HistoryBuilder, mut writer: WalWriter) -> io::Result<Self> {
        let objects = builder.base().iter().map(|s| s.name.clone()).collect();
        writer.append(&WalRecord::Header {
            version: FORMAT_VERSION,
            objects,
        })?;
        Ok(WalRecorder {
            builder,
            writer,
            error: None,
        })
    }

    fn append(&mut self, record: WalRecord) {
        if self.error.is_none() {
            if let Err(e) = self.writer.append(&record) {
                self.error = Some(e);
            }
        }
    }

    /// Flushes and syncs the log, surfacing the first error of the run (if
    /// any append failed, or the final flush does). On success returns the
    /// builder holding the in-memory history and the number of fsyncs the
    /// log cost.
    pub fn finish(self) -> io::Result<(HistoryBuilder, u64)> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let syncs = self.writer.finish()?;
        Ok((self.builder, syncs))
    }
}

impl HistoryRecorder for WalRecorder {
    fn record_begin_top(&mut self, exec: ExecId, name: &str) {
        self.builder.record_begin_top(exec, name);
        self.append(WalRecord::BeginTop {
            exec,
            name: name.to_owned(),
        });
    }

    fn record_invoke(
        &mut self,
        parent: ExecId,
        child: ExecId,
        target: ObjectId,
        method: &str,
        args: Vec<Value>,
    ) -> StepId {
        let step = self
            .builder
            .record_invoke(parent, child, target, method, args.clone());
        self.append(WalRecord::Invoke {
            step,
            parent,
            child,
            target,
            method: method.to_owned(),
            args,
        });
        step
    }

    fn record_local(&mut self, exec: ExecId, op: Operation, ret: Value) -> StepId {
        let step = self.builder.record_local(exec, op.clone(), ret.clone());
        self.append(WalRecord::Local {
            step,
            exec,
            op,
            ret,
        });
        step
    }

    fn record_program_order(&mut self, exec: ExecId, a: StepId, b: StepId) {
        self.builder.record_program_order(exec, a, b);
        self.append(WalRecord::ProgramOrder { exec, a, b });
    }

    fn record_complete(&mut self, step: StepId, ret: Value) {
        self.builder.record_complete(step, ret.clone());
        self.append(WalRecord::Complete { step, ret });
    }

    fn record_abort(&mut self, exec: ExecId) {
        self.builder.record_abort(exec);
        self.append(WalRecord::Abort { exec });
    }

    fn record_commit_top(&mut self, exec: ExecId) {
        // The in-memory builder needs no commit mark (commitment is the
        // absence of an abort), but the log does: this record is the
        // transaction's durability point, and the one the group-commit
        // window counts.
        self.append(WalRecord::CommitTop { exec });
    }

    fn record_snapshot_invoke(
        &mut self,
        parent: ExecId,
        child: ExecId,
        target: ObjectId,
        method: &str,
        args: Vec<Value>,
    ) -> StepId {
        let step = self
            .builder
            .record_snapshot_invoke(parent, child, target, method, args.clone());
        self.append(WalRecord::SnapshotInvoke {
            step,
            parent,
            child,
            target,
            method: method.to_owned(),
            args,
        });
        step
    }

    fn record_snapshot_local(
        &mut self,
        exec: ExecId,
        op: Operation,
        ret: Value,
        anchor: Option<StepId>,
    ) -> StepId {
        let step = self
            .builder
            .record_snapshot_local(exec, op.clone(), ret.clone(), anchor);
        self.append(WalRecord::SnapshotLocal {
            step,
            exec,
            op,
            ret,
            anchor,
        });
        step
    }

    fn record_snapshot_complete(&mut self, step: StepId, ret: Value) {
        self.builder.record_snapshot_complete(step, ret.clone());
        self.append(WalRecord::SnapshotComplete { step, ret });
    }
}
