//! The durable backend: logged execution and crash recovery.
//!
//! [`execute_durable`] is the drop-in durable counterpart of
//! [`obase_exec::execute`]: the same simulator loop over the same lifecycle
//! kernel, driven with a [`WalRecorder`] so every event hits the
//! write-ahead log before the run reports it.
//!
//! [`WalBackend::recover`] re-derives a consistent system from whatever
//! prefix of the log survived a crash:
//!
//! 1. **Scan** — decode frames until the first torn or corrupt one
//!    ([`crate::log::scan`]); everything after is discarded.
//! 2. **Replay** — re-drive the surviving events through a fresh
//!    [`HistoryBuilder`]. Append order equals allocation order, so the
//!    replayed prefix reproduces the run's execution and step ids exactly;
//!    any record that contradicts that numbering ends the usable prefix
//!    (recovery never panics on log content).
//! 3. **Roll back** — a top-level transaction is committed iff its commit
//!    record survived and no abort record follows; every other started top
//!    is rolled back with its whole subtree (`crash_rollback` in the abort
//!    histogram).
//! 4. **Cascade** — the per-object step logs (minus all aborted steps) are
//!    replayed through the semantic types. A surviving step whose recorded
//!    return value no longer holds observed state of a rolled-back
//!    transaction — a dirty read that the crash made visible — and its
//!    (committed!) transaction is rolled back too, to a fixpoint. This is
//!    the same invalidation rule the live engines use when undoing aborts,
//!    so recovery and runtime agree on what survives.
//! 5. **Oracle** — the result carries the committed projection of the
//!    recovered history plus the re-derived object states;
//!    [`Recovered::assert_serialisable`] holds them to the same
//!    Definition-3/Theorem-2 checks as a live run.

use crate::codec::WalRecord;
use crate::log::{self, log_path, WalWriter};
use crate::recorder::WalRecorder;
use crate::WalError;
use obase_core::builder::HistoryBuilder;
use obase_core::history::History;
use obase_core::ids::{ExecId, ObjectId};
use obase_core::object::ObjectBase;
use obase_core::sched::{AbortReason, Scheduler};
use obase_core::value::Value;
use obase_exec::store::{replay_log, LogEntry};
use obase_exec::{drive, ExecParams, RunResult, WorkloadSpec};
use obase_obs::ObsHandle;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;

/// Runs a workload durably: the simulator loop of [`obase_exec::execute`],
/// with every event logged to `dir` before the run reports. `group_commit`
/// is the fsync window in commit records (`1` = fsync per commit, `0` =
/// never fsync — a benchmark baseline).
pub fn execute_durable(
    workload: &WorkloadSpec,
    scheduler: &mut dyn Scheduler,
    config: &ExecParams,
    dir: &Path,
    group_commit: usize,
) -> Result<RunResult, WalError> {
    execute_durable_observed(
        workload,
        scheduler,
        config,
        dir,
        group_commit,
        &ObsHandle::off(),
    )
}

/// [`execute_durable`] with lifecycle observation: the simulator loop's
/// events plus an fsync begin/end span per group-commit sync, emitted on the
/// `"wal"` lane. With a disabled handle this *is* [`execute_durable`].
pub fn execute_durable_observed(
    workload: &WorkloadSpec,
    scheduler: &mut dyn Scheduler,
    config: &ExecParams,
    dir: &Path,
    group_commit: usize,
    obs: &ObsHandle,
) -> Result<RunResult, WalError> {
    std::fs::create_dir_all(dir)?;
    let mut writer = WalWriter::create(&log_path(dir), group_commit)?;
    writer.set_observer(obs.lane("wal"));
    let mut builder = HistoryBuilder::new(Arc::clone(workload.def.base()));
    builder.set_auto_program_order(false);
    let recorder = WalRecorder::new(builder, writer)?;
    let (kernel, recorder) = drive(workload, scheduler, config, "durable", recorder, obs);
    let (builder, _syncs) = recorder.finish()?;
    Ok(kernel.into_result(builder.build()))
}

/// Crash recovery for the durable backend. Holds the object base the log
/// was written against (the log records states and operations, not semantic
/// types — like any database, recovery needs the catalog).
#[derive(Debug)]
pub struct WalBackend {
    base: Arc<ObjectBase>,
}

impl WalBackend {
    /// A recovery handle over an object base.
    pub fn new(base: Arc<ObjectBase>) -> Self {
        WalBackend { base }
    }

    /// Recovers from the log in `dir` (as written by [`execute_durable`]).
    pub fn recover(&self, dir: &Path) -> Result<Recovered, WalError> {
        self.recover_file(&log_path(dir))
    }

    /// Recovers from an explicit log file path. See the module docs for the
    /// algorithm; errors are I/O and catalog mismatches only — torn and
    /// corrupt logs are data, not errors.
    pub fn recover_file(&self, path: &Path) -> Result<Recovered, WalError> {
        let scan = log::scan(path)?;
        let mut torn = scan.torn;
        let mut records = scan.records.into_iter();
        match records.next() {
            Some(WalRecord::Header { objects, .. }) => {
                let expect: Vec<String> = self.base.iter().map(|s| s.name.clone()).collect();
                if objects != expect {
                    return Err(WalError::BaseMismatch(format!(
                        "log objects {objects:?} != base objects {expect:?}"
                    )));
                }
            }
            // A complete first record that is not a header means this is not
            // our log at all — refuse rather than reinterpret foreign data.
            Some(_) => return Err(WalError::MissingHeader(path.to_owned())),
            // Zero complete records: the crash tore the log inside the very
            // first frame (kill-at-any-point includes the header write), or
            // nothing was ever written. Either way the durable state is total
            // loss — recover to the base state with zero commits.
            None => {
                let raw_history = HistoryBuilder::new(Arc::clone(&self.base)).build();
                let history = raw_history.committed_projection();
                return Ok(Recovered {
                    history,
                    raw_history,
                    committed: Vec::new(),
                    rolled_back: Vec::new(),
                    final_states: self.base.initial_states(),
                    records: 0,
                    torn,
                });
            }
        }

        let mut builder = HistoryBuilder::new(Arc::clone(&self.base));
        builder.set_auto_program_order(false);
        // Mirrors of the builder's allocators: a surviving record that
        // contradicts the replayed numbering ends the usable prefix.
        let mut next_exec: u32 = 0;
        let mut next_step: u32 = 0;
        let mut parent: Vec<Option<ExecId>> = Vec::new();
        let mut children: Vec<Vec<ExecId>> = Vec::new();
        let mut exec_object: Vec<ObjectId> = Vec::new();
        let mut aborted: BTreeSet<ExecId> = BTreeSet::new();
        let mut committed_tops: BTreeSet<ExecId> = BTreeSet::new();
        let mut object_logs: BTreeMap<ObjectId, Vec<LogEntry>> = BTreeMap::new();
        let mut replayed = 1usize; // the header

        for rec in records {
            let consistent = match rec {
                WalRecord::Header { .. } => false, // only ever first
                WalRecord::BeginTop { exec, name } => {
                    exec.0 == next_exec && {
                        builder.begin_top_level(name);
                        next_exec += 1;
                        parent.push(None);
                        children.push(Vec::new());
                        exec_object.push(ObjectId::ENVIRONMENT);
                        true
                    }
                }
                WalRecord::Invoke {
                    step,
                    parent: p,
                    child,
                    target,
                    method,
                    args,
                } => {
                    child.0 == next_exec
                        && step.0 == next_step
                        && p.0 < next_exec
                        && self.base.contains(target)
                        && {
                            builder.invoke(p, target, method, args);
                            next_exec += 1;
                            next_step += 1;
                            parent.push(Some(p));
                            children.push(Vec::new());
                            children[p.index()].push(child);
                            exec_object.push(target);
                            true
                        }
                }
                WalRecord::Local {
                    step,
                    exec,
                    op,
                    ret,
                } => {
                    exec.0 < next_exec
                        && step.0 == next_step
                        && !exec_object[exec.index()].is_environment()
                        && {
                            object_logs
                                .entry(exec_object[exec.index()])
                                .or_default()
                                .push(LogEntry {
                                    exec,
                                    op: op.clone(),
                                    ret: ret.clone(),
                                });
                            builder.local(exec, op, ret);
                            next_step += 1;
                            true
                        }
                }
                WalRecord::ProgramOrder { exec, a, b } => {
                    exec.0 < next_exec && a.0 < next_step && b.0 < next_step && {
                        builder.program_order_edge(exec, a, b);
                        true
                    }
                }
                WalRecord::Complete { step, ret } => {
                    step.0 < next_step && {
                        builder.complete_invoke(step, ret);
                        true
                    }
                }
                WalRecord::Abort { exec } => {
                    exec.0 < next_exec && {
                        builder.abort(exec);
                        next_step += 1; // the abort step
                        aborted.insert(exec);
                        true
                    }
                }
                WalRecord::CommitTop { exec } => {
                    exec.0 < next_exec && {
                        committed_tops.insert(exec);
                        true
                    }
                }
                WalRecord::SnapshotInvoke {
                    step,
                    parent: p,
                    child,
                    target,
                    method,
                    args,
                } => {
                    child.0 == next_exec
                        && step.0 == next_step
                        && p.0 < next_exec
                        && self.base.contains(target)
                        && {
                            builder.snapshot_invoke(p, target, method, args);
                            next_exec += 1;
                            next_step += 1;
                            parent.push(Some(p));
                            children.push(Vec::new());
                            children[p.index()].push(child);
                            exec_object.push(target);
                            true
                        }
                }
                WalRecord::SnapshotLocal {
                    step,
                    exec,
                    op,
                    ret,
                    anchor,
                } => {
                    // Snapshot reads install nothing: they never enter the
                    // per-object logs the cascade replay consumes.
                    exec.0 < next_exec
                        && step.0 == next_step
                        && anchor.is_none_or(|a| a.0 < next_step)
                        && !exec_object[exec.index()].is_environment()
                        && {
                            builder.snapshot_local(exec, op, ret, anchor);
                            next_step += 1;
                            true
                        }
                }
                WalRecord::SnapshotComplete { step, ret } => {
                    step.0 < next_step && {
                        builder.snapshot_complete(step, ret);
                        true
                    }
                }
            };
            if !consistent {
                torn = true;
                break;
            }
            replayed += 1;
        }

        // A torn tail can keep an execution's abort record while losing its
        // descendants': the kernel logs one abort record per subtree member
        // and the crash can fall between them. Aborting an execution aborts
        // its whole subtree, so close the set over child links before it
        // filters the per-object step logs — otherwise an orphaned child's
        // installed effects leak into the recovered state while the history
        // side (where `effectively_aborted` propagates through ancestors)
        // correctly discards them (found by the differential fuzzer; see
        // `bugbase/`).
        let orphans: Vec<ExecId> = aborted
            .iter()
            .flat_map(|e| subtree_of(&children, *e))
            .filter(|e| !aborted.contains(e))
            .collect();
        aborted.extend(orphans);

        // Phase 3+4: roll back every started-but-unresolved top, then
        // cascade through dirty reads the removals expose, to a fixpoint.
        let mut rolled_back: Vec<ExecId> = Vec::new();
        let mut pending: Vec<ExecId> = (0..next_exec)
            .map(ExecId)
            .filter(|e| {
                parent[e.index()].is_none() && !committed_tops.contains(e) && !aborted.contains(e)
            })
            .collect();
        let final_states = loop {
            for top in pending.drain(..) {
                for e in subtree_of(&children, top) {
                    if aborted.insert(e) {
                        builder.abort(e);
                    }
                }
                committed_tops.remove(&top);
                rolled_back.push(top);
            }
            let mut states = self.base.initial_states();
            let mut dirty: BTreeSet<ExecId> = BTreeSet::new();
            for (o, entries) in &object_logs {
                let surviving: Vec<LogEntry> = entries
                    .iter()
                    .filter(|e| !aborted.contains(&e.exec))
                    .cloned()
                    .collect();
                let ty = self.base.type_of(*o);
                let initial = states.get(o).cloned().unwrap_or_else(|| ty.initial_state());
                let (state, invalidated) = replay_log(&ty, &initial, &surviving);
                states.insert(*o, state);
                dirty.extend(invalidated);
            }
            pending = dirty
                .iter()
                .map(|e| top_of(&parent, *e))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .filter(|t| !aborted.contains(t))
                .collect();
            if pending.is_empty() {
                break states;
            }
        };

        let raw_history = builder.build();
        let history = raw_history.committed_projection();
        let committed: Vec<ExecId> = committed_tops.difference(&aborted).copied().collect();
        Ok(Recovered {
            history,
            raw_history,
            committed,
            rolled_back,
            final_states,
            records: replayed,
            torn,
        })
    }
}

/// Top-level ancestor of an execution, by parent links.
fn top_of(parent: &[Option<ExecId>], mut e: ExecId) -> ExecId {
    while let Some(p) = parent[e.index()] {
        e = p;
    }
    e
}

/// The execution and all its descendants, by child links.
fn subtree_of(children: &[Vec<ExecId>], top: ExecId) -> Vec<ExecId> {
    let mut out = vec![top];
    let mut i = 0;
    while i < out.len() {
        out.extend(children[out[i].index()].iter().copied());
        i += 1;
    }
    out
}

/// The outcome of a recovery: the surviving histories, what committed, what
/// was rolled back, and the re-derived object states.
#[derive(Debug)]
pub struct Recovered {
    /// The committed projection of the recovered history — what the
    /// serialisability oracle consumes.
    pub history: History,
    /// The full recovered history, including run-time aborts and the
    /// recovery roll-backs.
    pub raw_history: History,
    /// Top-level executions that survived as committed.
    pub committed: Vec<ExecId>,
    /// Top-level executions rolled back by recovery: in flight at the
    /// crash, or committed but invalidated by a dirty read the crash
    /// exposed.
    pub rolled_back: Vec<ExecId>,
    /// Object states re-derived by replaying the committed steps.
    pub final_states: BTreeMap<ObjectId, Value>,
    /// Log records replayed (the surviving prefix, including the header).
    pub records: usize,
    /// `true` if a torn, corrupt or inconsistent tail was discarded.
    pub torn: bool,
}

impl Recovered {
    /// Number of transactions recovery rolled back — the value of the
    /// `"crash_rollback"` abort bucket.
    pub fn crash_rollbacks(&self) -> u64 {
        self.rolled_back.len() as u64
    }

    /// The recovery's abort histogram, keyed like
    /// [`RunMetrics::aborts_by_reason`](obase_exec::RunMetrics): roll-backs
    /// under [`AbortReason::CrashRollback`]'s key, merge-compatible with the
    /// benchmark histogram machinery.
    pub fn aborts_by_reason(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        if !self.rolled_back.is_empty() {
            out.insert(
                AbortReason::CrashRollback.key().to_owned(),
                self.crash_rollbacks(),
            );
        }
        out
    }

    /// `true` if the recovered committed history passes the paper's checks:
    /// legal (Definition 6) with an acyclic serialisation graph (Theorem 2).
    pub fn is_serialisable(&self) -> bool {
        obase_core::legality::is_legal(&self.history)
            && obase_core::sg::certifies_serialisable(&self.history)
    }

    /// Holds the recovery to the oracle: the committed history must be
    /// legal, its serialisation graph acyclic, and the re-derived object
    /// states must equal the states obtained by replaying the committed
    /// history in the core model.
    ///
    /// # Panics
    /// Panics if any check fails.
    pub fn assert_serialisable(&self) {
        assert!(
            obase_core::legality::is_legal(&self.history),
            "recovered history is not legal: {:?}",
            obase_core::legality::check_legal(&self.history)
        );
        assert!(
            obase_core::sg::certifies_serialisable(&self.history),
            "recovered serialisation graph is cyclic"
        );
        let replayed =
            obase_core::replay::final_states(&self.history).expect("legal history replays");
        for (o, v) in &replayed {
            assert_eq!(
                self.final_states.get(o),
                Some(v),
                "recovered state of {o} diverges from committed-history replay"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{encode_frame, scan};
    use obase_exec::WorkloadSpec;
    use std::path::PathBuf;

    fn run_sample(tag: &str) -> (WorkloadSpec, PathBuf) {
        let workload = obase_workload::queues(&obase_workload::QueueParams {
            queues: 1,
            producers: 2,
            consumers: 2,
            preload: 2,
            seed: 7,
        });
        let dir = crate::scratch_dir(tag);
        let mut sched = obase_lock::N2plScheduler::step_locks();
        execute_durable(&workload, &mut sched, &ExecParams::default(), &dir, 1)
            .expect("sample run executes");
        (workload, dir)
    }

    /// Kill-at-any-point includes the header write: a crash can tear the
    /// log *inside the very first frame*, before the header record is
    /// durable. Every such cut — and the empty, never-written file — is
    /// total loss, and recovery must return the base state with zero
    /// commits rather than refuse with `MissingHeader`. Found by the
    /// differential fuzzer (see `bugbase/`).
    #[test]
    fn a_cut_inside_the_header_frame_recovers_to_the_base_state() {
        let (workload, dir) = run_sample("wal-header-torn");
        let path = log_path(&dir);
        let full = std::fs::read(&path).expect("log exists");
        let header_end = scan(&path).expect("scan").frame_ends[0] as usize;
        let backend = WalBackend::new(Arc::clone(workload.def.base()));
        for cut in 0..header_end {
            std::fs::write(&path, &full[..cut]).expect("apply cut");
            let recovered = backend
                .recover(&dir)
                .unwrap_or_else(|e| panic!("cut at {cut} must recover as total loss: {e}"));
            assert!(recovered.committed.is_empty(), "cut at {cut}");
            assert!(recovered.rolled_back.is_empty(), "cut at {cut}");
            assert_eq!(recovered.records, 0, "cut at {cut}");
            assert_eq!(recovered.torn, cut != 0, "cut at {cut}");
            assert_eq!(
                recovered.final_states,
                workload.def.base().initial_states(),
                "cut at {cut}: total loss must land on the base state"
            );
            recovered.assert_serialisable();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The foreign-log protection survives the total-loss carve-out: a file
    /// whose first *complete* record is not a header is some other format,
    /// and recovery still refuses to reinterpret it.
    #[test]
    fn a_complete_non_header_first_record_is_still_refused() {
        let (workload, dir) = run_sample("wal-foreign");
        let frame = encode_frame(&WalRecord::BeginTop {
            exec: ExecId(0),
            name: "T0".to_owned(),
        });
        std::fs::write(log_path(&dir), frame).expect("plant foreign log");
        let err = WalBackend::new(Arc::clone(workload.def.base()))
            .recover(&dir)
            .expect_err("a non-header first record is a foreign log");
        assert!(matches!(err, WalError::MissingHeader(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
