//! Log framing, the group-commit writer and the torn-tail reader.
//!
//! ## Frame format
//!
//! The log is a flat sequence of frames, each
//!
//! ```text
//! [len: u32 LE] [checksum: u32 LE] [payload: len bytes]
//! ```
//!
//! where `payload` is the UTF-8 JSON text of one [`WalRecord`] and
//! `checksum` is FNV-1a/32 over the payload. A frame whose header runs past
//! the end of the file, whose length is implausible, whose checksum does not
//! match, or whose payload fails to parse ends the log: everything before it
//! is the *surviving prefix*, everything from it on is a torn tail — the
//! normal shape of a log whose writer died mid-append. A single flipped
//! payload byte always changes the FNV-1a digest (each round is injective in
//! the accumulator), so corruption is detected, not replayed.
//!
//! ## Group commit
//!
//! [`WalWriter`] buffers appends in userspace and fsyncs once per *window*
//! of commit records (`group_commit` of them) instead of once per commit —
//! the classic throughput/durability trade: a window of `n` risks the last
//! `< n` commits on power loss but divides the dominant per-commit fsync
//! cost by `n`. `group_commit == 1` is fsync-per-commit, `0` never fsyncs
//! (a baseline for the durability benchmarks; crash durability is then
//! whatever the OS page cache survives).

use crate::codec::WalRecord;
use obase_obs::{ObsEvent, ObsLane};
use obase_ser::Json;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// File name of the log inside a durable backend's directory.
pub const LOG_FILE: &str = "obase.wal";

/// Frame-header size: length word plus checksum word.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single record's payload; a length word above this is
/// treated as corruption rather than an instruction to allocate.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// The log file inside a durable backend's directory.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join(LOG_FILE)
}

/// FNV-1a/32 over a byte slice — the frame checksum.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encodes one record as a complete frame (header plus payload).
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = record.to_json().to_string().into_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&checksum(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Appending side of the log: buffered writes, fsync per commit window.
#[derive(Debug)]
pub struct WalWriter {
    writer: BufWriter<File>,
    group_commit: usize,
    pending_commits: usize,
    records: u64,
    syncs: u64,
    obs: ObsLane,
}

impl WalWriter {
    /// Creates (truncating) the log file. `group_commit` is the number of
    /// commit records batched per fsync; `0` disables fsync entirely.
    pub fn create(path: &Path, group_commit: usize) -> io::Result<Self> {
        Ok(WalWriter {
            writer: BufWriter::new(File::create(path)?),
            group_commit,
            pending_commits: 0,
            records: 0,
            syncs: 0,
            obs: ObsLane::off(),
        })
    }

    /// Attaches an observability lane: every fsync is emitted as a
    /// begin/end span (the `"wal"` lane of a traced durable run).
    pub fn set_observer(&mut self, lane: ObsLane) {
        self.obs = lane;
    }

    /// Appends one record; on a commit record, fsyncs if the window is full.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.writer.write_all(&encode_frame(record))?;
        self.records += 1;
        if matches!(record, WalRecord::CommitTop { .. }) {
            self.pending_commits += 1;
            if self.group_commit >= 1 && self.pending_commits >= self.group_commit {
                self.sync()?;
            }
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.obs.emit(ObsEvent::FsyncBegin);
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.obs.emit(ObsEvent::FsyncEnd);
        self.pending_commits = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Fsyncs issued so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Flushes userspace buffers and, unless fsync is disabled, syncs the
    /// tail window. Returns the total number of fsyncs issued.
    pub fn finish(mut self) -> io::Result<u64> {
        if self.group_commit >= 1 {
            self.obs.emit(ObsEvent::FsyncBegin);
            self.writer.flush()?;
            self.writer.get_ref().sync_data()?;
            self.obs.emit(ObsEvent::FsyncEnd);
            self.syncs += 1;
        } else {
            self.writer.flush()?;
        }
        self.obs.flush();
        Ok(self.syncs)
    }
}

/// The outcome of scanning a log: the decoded surviving prefix and where it
/// ends.
#[derive(Debug)]
pub struct LogScan {
    /// Decoded records of the surviving prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past each surviving record — `frame_ends[i]` is
    /// where record `i`'s frame ends. Crash tests use these as the universe
    /// of "clean cut" points.
    pub frame_ends: Vec<u64>,
    /// Total bytes in the file.
    pub file_len: u64,
    /// `true` if a torn or corrupt tail was discarded (the file extends past
    /// the last surviving frame).
    pub torn: bool,
}

/// Scans a log file, decoding frames until the first torn or corrupt one.
/// Never fails on log *content* — only on I/O.
pub fn scan(path: &Path) -> io::Result<LogScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut records = Vec::new();
    let mut frame_ends = Vec::new();
    let mut at = 0usize;
    let intact = loop {
        if at == bytes.len() {
            break true; // clean end of log
        }
        if bytes.len() - at < FRAME_HEADER {
            break false; // torn header
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let sum = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD || bytes.len() - at - FRAME_HEADER < len as usize {
            break false; // implausible length or torn payload
        }
        let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len as usize];
        if checksum(payload) != sum {
            break false; // corrupt payload
        }
        let record = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| Json::parse(text).ok())
            .and_then(|json| WalRecord::from_json(&json).ok());
        match record {
            Some(r) => {
                at += FRAME_HEADER + len as usize;
                records.push(r);
                frame_ends.push(at as u64);
            }
            None => break false, // checksummed but undecodable
        }
    };
    Ok(LogScan {
        records,
        frame_ends,
        file_len: bytes.len() as u64,
        torn: !intact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obase_core::ids::ExecId;

    fn sample_records(n: u32) -> Vec<WalRecord> {
        (0..n)
            .flat_map(|i| {
                [
                    WalRecord::BeginTop {
                        exec: ExecId(i),
                        name: format!("T{i}"),
                    },
                    WalRecord::CommitTop { exec: ExecId(i) },
                ]
            })
            .collect()
    }

    #[test]
    fn write_then_scan_round_trips() {
        let dir = crate::scratch_dir("log-roundtrip");
        let path = log_path(&dir);
        let recs = sample_records(5);
        let mut w = WalWriter::create(&path, 1).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        assert_eq!(w.records(), recs.len() as u64);
        let syncs = w.finish().unwrap();
        assert_eq!(syncs, 6); // one per commit + the finish sync
        let scan = scan(&path).unwrap();
        assert_eq!(scan.records, recs);
        assert!(!scan.torn);
        assert_eq!(*scan.frame_ends.last().unwrap(), scan.file_len);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = crate::scratch_dir("log-group");
        let path = log_path(&dir);
        let mut w = WalWriter::create(&path, 4).unwrap();
        for r in sample_records(10) {
            w.append(&r).unwrap();
        }
        // 10 commits at a window of 4 → syncs after the 4th and 8th, then
        // one final sync covering the tail 2.
        assert_eq!(w.syncs(), 2);
        assert_eq!(w.finish().unwrap(), 3);

        let mut w = WalWriter::create(&path, 0).unwrap();
        for r in sample_records(10) {
            w.append(&r).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 0, "group_commit 0 never fsyncs");
    }

    #[test]
    fn truncation_at_every_byte_yields_a_prefix() {
        let dir = crate::scratch_dir("log-trunc");
        let path = log_path(&dir);
        let recs = sample_records(3);
        let mut w = WalWriter::create(&path, 1).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        let ends = scan(&path).unwrap().frame_ends;
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let s = scan(&path).unwrap();
            // The surviving records are exactly the frames wholly inside the
            // cut, and torn-ness is exact.
            let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(s.records.len(), expect, "cut at {cut}");
            assert_eq!(s.records[..], recs[..expect], "cut at {cut}");
            let clean = expect
                .checked_sub(1)
                .map_or(cut == 0, |i| ends[i] == cut as u64);
            assert_eq!(s.torn, !clean, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_byte_corruption_is_always_detected() {
        let dir = crate::scratch_dir("log-corrupt");
        let path = log_path(&dir);
        let recs = sample_records(2);
        let mut w = WalWriter::create(&path, 1).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        for at in 0..full.len() {
            let mut bytes = full.clone();
            bytes[at] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
            let s = scan(&path).unwrap();
            // Corruption may only shorten the log, never alter a record.
            assert!(s.records.len() <= recs.len(), "byte {at}");
            assert_eq!(s.records[..], recs[..s.records.len()], "byte {at}");
            assert!(
                s.torn || s.records.len() == recs.len(),
                "byte {at}: silently dropped records"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
