//! On-disk representation of write-ahead log records.
//!
//! Each record is one JSON document in the `obase-ser` dialect — readable
//! with any JSON tool, deterministic to print (sorted object keys), and
//! dependency-free to parse. Values are encoded as small tagged arrays
//! (`["i", 5]`, `["l", [...]]`) so the dynamic [`Value`] type round-trips
//! without ambiguity; records are objects tagged by a one-letter `"t"` key.
//!
//! Decoding is *total*: any malformed document decodes to an error, never a
//! panic — the log reader treats an undecodable record like a torn tail.

use obase_core::ids::{ExecId, ObjectId, StepId};
use obase_core::op::Operation;
use obase_core::value::Value;
use obase_ser::Json;

/// Format version stamped into the header record.
pub const FORMAT_VERSION: i64 = 1;

/// One write-ahead log record: the header, every lifecycle event the
/// recording contract emits, and the commit record that only durable
/// recorders persist (in-memory histories derive commitment from the
/// absence of an abort mark; a log must say it explicitly — it is the
/// durability point of the transaction).
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// First record of every log: format version and the names of the
    /// objects in the base, in id order. Recovery refuses a log whose
    /// header does not match the object base it is given.
    Header {
        /// Format version ([`FORMAT_VERSION`]).
        version: i64,
        /// Object names in [`ObjectId`] order.
        objects: Vec<String>,
    },
    /// A top-level transaction began.
    BeginTop {
        /// The transaction's execution id.
        exec: ExecId,
        /// The transaction's label.
        name: String,
    },
    /// A message step: `parent` invoked `method` on `target`, creating
    /// `child`.
    Invoke {
        /// Final id of the message step.
        step: StepId,
        /// The invoking execution.
        parent: ExecId,
        /// The created child execution.
        child: ExecId,
        /// The target object.
        target: ObjectId,
        /// The invoked method.
        method: String,
        /// The invocation arguments.
        args: Vec<Value>,
    },
    /// A local step installed by `exec`.
    Local {
        /// Final id of the step.
        step: StepId,
        /// The issuing execution.
        exec: ExecId,
        /// The operation.
        op: Operation,
        /// The observed return value.
        ret: Value,
    },
    /// A program-order edge `a ⊲ b` within `exec`.
    ProgramOrder {
        /// The execution the edge belongs to.
        exec: ExecId,
        /// The earlier step.
        a: StepId,
        /// The later step.
        b: StepId,
    },
    /// The message step `step` completed with return value `ret`.
    Complete {
        /// Final id of the message step.
        step: StepId,
        /// The value returned to the sender.
        ret: Value,
    },
    /// `exec` aborted (with its whole subtree; every member gets a record).
    Abort {
        /// The aborted execution.
        exec: ExecId,
    },
    /// The top-level transaction `exec` committed — the durability point.
    CommitTop {
        /// The committed top-level execution.
        exec: ExecId,
    },
    /// A message step of a snapshot-read transaction (MVCC read path):
    /// replayed through the builder's deferred-interval snapshot path, so
    /// recovery reproduces the fabricated read timeline exactly.
    SnapshotInvoke {
        /// Final id of the message step.
        step: StepId,
        /// The invoking execution.
        parent: ExecId,
        /// The created child execution.
        child: ExecId,
        /// The target object.
        target: ObjectId,
        /// The invoked method.
        method: String,
        /// The invocation arguments.
        args: Vec<Value>,
    },
    /// A snapshot read, anchored to the last step of the committed version
    /// it observed.
    SnapshotLocal {
        /// Final id of the step.
        step: StepId,
        /// The issuing execution.
        exec: ExecId,
        /// The (read-only) operation.
        op: Operation,
        /// The observed return value.
        ret: Value,
        /// Final id of the observed version's last step, if any.
        anchor: Option<StepId>,
    },
    /// A snapshot message step's return value.
    SnapshotComplete {
        /// Final id of the message step.
        step: StepId,
        /// The value returned to the sender.
        ret: Value,
    },
}

/// Encodes a [`Value`] as a tagged JSON array.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Unit => Json::Array(vec![Json::str("u")]),
        Value::Bool(b) => Json::Array(vec![Json::str("b"), Json::Bool(*b)]),
        Value::Int(i) => Json::Array(vec![Json::str("i"), Json::Int(*i)]),
        Value::Str(s) => Json::Array(vec![Json::str("s"), Json::str(s.clone())]),
        Value::Obj(o) => Json::Array(vec![Json::str("o"), Json::Int(o.0 as i64)]),
        Value::List(items) => Json::Array(vec![
            Json::str("l"),
            Json::Array(items.iter().map(value_to_json).collect()),
        ]),
        Value::Map(map) => Json::Array(vec![
            Json::str("m"),
            Json::Object(
                map.iter()
                    .map(|(k, v)| (k.clone(), value_to_json(v)))
                    .collect(),
            ),
        ]),
    }
}

/// Decodes a [`Value`] from its tagged-array encoding.
pub fn value_from_json(j: &Json) -> Result<Value, String> {
    let arr = j.as_array().ok_or("value is not a tagged array")?;
    let tag = arr
        .first()
        .and_then(Json::as_str)
        .ok_or("value array has no string tag")?;
    let payload = arr.get(1);
    match (tag, payload) {
        ("u", None) => Ok(Value::Unit),
        ("b", Some(p)) => p.as_bool().map(Value::Bool).ok_or_else(bad(tag)),
        ("i", Some(p)) => p.as_int().map(Value::Int).ok_or_else(bad(tag)),
        ("s", Some(p)) => p
            .as_str()
            .map(|s| Value::Str(s.to_owned()))
            .ok_or_else(bad(tag)),
        ("o", Some(p)) => p
            .as_int()
            .and_then(|i| u32::try_from(i).ok())
            .map(|i| Value::Obj(ObjectId(i)))
            .ok_or_else(bad(tag)),
        ("l", Some(p)) => p
            .as_array()
            .ok_or_else(bad(tag))?
            .iter()
            .map(value_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map(Value::List),
        ("m", Some(p)) => p
            .as_object()
            .ok_or_else(bad(tag))?
            .iter()
            .map(|(k, v)| value_from_json(v).map(|v| (k.clone(), v)))
            .collect::<Result<std::collections::BTreeMap<_, _>, _>>()
            .map(Value::Map),
        _ => Err(format!("unknown value tag {tag:?}")),
    }
}

fn bad(tag: &str) -> impl Fn() -> String + '_ {
    move || format!("malformed {tag:?} value payload")
}

fn op_to_json(op: &Operation) -> Json {
    Json::object([
        (
            "a",
            Json::Array(op.args.iter().map(value_to_json).collect()),
        ),
        ("n", Json::str(op.name.clone())),
    ])
}

fn op_from_json(j: &Json) -> Result<Operation, String> {
    let name = j
        .get("n")
        .and_then(Json::as_str)
        .ok_or("operation has no name")?;
    let args = j
        .get("a")
        .and_then(Json::as_array)
        .ok_or("operation has no args array")?
        .iter()
        .map(value_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Operation::new(name, args))
}

fn values_to_json(vs: &[Value]) -> Json {
    Json::Array(vs.iter().map(value_to_json).collect())
}

fn get_u32(j: &Json, key: &str) -> Result<u32, String> {
    j.get(key)
        .and_then(Json::as_int)
        .and_then(|i| u32::try_from(i).ok())
        .ok_or_else(|| format!("missing or non-u32 field {key:?}"))
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

impl WalRecord {
    /// Encodes the record as one JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            WalRecord::Header { version, objects } => Json::object([
                ("t", Json::str("H")),
                ("v", Json::Int(*version)),
                (
                    "objects",
                    Json::Array(objects.iter().map(|n| Json::str(n.clone())).collect()),
                ),
            ]),
            WalRecord::BeginTop { exec, name } => Json::object([
                ("t", Json::str("B")),
                ("e", Json::Int(exec.0 as i64)),
                ("n", Json::str(name.clone())),
            ]),
            WalRecord::Invoke {
                step,
                parent,
                child,
                target,
                method,
                args,
            } => Json::object([
                ("t", Json::str("I")),
                ("s", Json::Int(step.0 as i64)),
                ("p", Json::Int(parent.0 as i64)),
                ("c", Json::Int(child.0 as i64)),
                ("o", Json::Int(target.0 as i64)),
                ("m", Json::str(method.clone())),
                ("a", values_to_json(args)),
            ]),
            WalRecord::Local {
                step,
                exec,
                op,
                ret,
            } => Json::object([
                ("t", Json::str("L")),
                ("s", Json::Int(step.0 as i64)),
                ("e", Json::Int(exec.0 as i64)),
                ("op", op_to_json(op)),
                ("r", value_to_json(ret)),
            ]),
            WalRecord::ProgramOrder { exec, a, b } => Json::object([
                ("t", Json::str("P")),
                ("e", Json::Int(exec.0 as i64)),
                ("a", Json::Int(a.0 as i64)),
                ("b", Json::Int(b.0 as i64)),
            ]),
            WalRecord::Complete { step, ret } => Json::object([
                ("t", Json::str("C")),
                ("s", Json::Int(step.0 as i64)),
                ("r", value_to_json(ret)),
            ]),
            WalRecord::Abort { exec } => {
                Json::object([("t", Json::str("A")), ("e", Json::Int(exec.0 as i64))])
            }
            WalRecord::CommitTop { exec } => {
                Json::object([("t", Json::str("K")), ("e", Json::Int(exec.0 as i64))])
            }
            WalRecord::SnapshotInvoke {
                step,
                parent,
                child,
                target,
                method,
                args,
            } => Json::object([
                ("t", Json::str("V")),
                ("s", Json::Int(step.0 as i64)),
                ("p", Json::Int(parent.0 as i64)),
                ("c", Json::Int(child.0 as i64)),
                ("o", Json::Int(target.0 as i64)),
                ("m", Json::str(method.clone())),
                ("a", values_to_json(args)),
            ]),
            WalRecord::SnapshotLocal {
                step,
                exec,
                op,
                ret,
                anchor,
            } => {
                let mut fields = vec![
                    ("t", Json::str("R")),
                    ("s", Json::Int(step.0 as i64)),
                    ("e", Json::Int(exec.0 as i64)),
                    ("op", op_to_json(op)),
                    ("r", value_to_json(ret)),
                ];
                if let Some(a) = anchor {
                    fields.push(("an", Json::Int(a.0 as i64)));
                }
                Json::object(fields)
            }
            WalRecord::SnapshotComplete { step, ret } => Json::object([
                ("t", Json::str("S")),
                ("s", Json::Int(step.0 as i64)),
                ("r", value_to_json(ret)),
            ]),
        }
    }

    /// Decodes a record from one JSON document. Total: malformed input is an
    /// error, never a panic.
    pub fn from_json(j: &Json) -> Result<WalRecord, String> {
        match get_str(j, "t")? {
            "H" => Ok(WalRecord::Header {
                version: j
                    .get("v")
                    .and_then(Json::as_int)
                    .ok_or("header has no version")?,
                objects: j
                    .get("objects")
                    .and_then(Json::as_array)
                    .ok_or("header has no objects array")?
                    .iter()
                    .map(|o| {
                        o.as_str()
                            .map(str::to_owned)
                            .ok_or("non-string object name")
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "B" => Ok(WalRecord::BeginTop {
                exec: ExecId(get_u32(j, "e")?),
                name: get_str(j, "n")?.to_owned(),
            }),
            "I" => Ok(WalRecord::Invoke {
                step: StepId(get_u32(j, "s")?),
                parent: ExecId(get_u32(j, "p")?),
                child: ExecId(get_u32(j, "c")?),
                target: ObjectId(get_u32(j, "o")?),
                method: get_str(j, "m")?.to_owned(),
                args: j
                    .get("a")
                    .and_then(Json::as_array)
                    .ok_or("invoke has no args array")?
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "L" => Ok(WalRecord::Local {
                step: StepId(get_u32(j, "s")?),
                exec: ExecId(get_u32(j, "e")?),
                op: op_from_json(j.get("op").ok_or("local has no op")?)?,
                ret: value_from_json(j.get("r").ok_or("local has no ret")?)?,
            }),
            "P" => Ok(WalRecord::ProgramOrder {
                exec: ExecId(get_u32(j, "e")?),
                a: StepId(get_u32(j, "a")?),
                b: StepId(get_u32(j, "b")?),
            }),
            "C" => Ok(WalRecord::Complete {
                step: StepId(get_u32(j, "s")?),
                ret: value_from_json(j.get("r").ok_or("complete has no ret")?)?,
            }),
            "A" => Ok(WalRecord::Abort {
                exec: ExecId(get_u32(j, "e")?),
            }),
            "K" => Ok(WalRecord::CommitTop {
                exec: ExecId(get_u32(j, "e")?),
            }),
            "V" => Ok(WalRecord::SnapshotInvoke {
                step: StepId(get_u32(j, "s")?),
                parent: ExecId(get_u32(j, "p")?),
                child: ExecId(get_u32(j, "c")?),
                target: ObjectId(get_u32(j, "o")?),
                method: get_str(j, "m")?.to_owned(),
                args: j
                    .get("a")
                    .and_then(Json::as_array)
                    .ok_or("snapshot invoke has no args array")?
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "R" => Ok(WalRecord::SnapshotLocal {
                step: StepId(get_u32(j, "s")?),
                exec: ExecId(get_u32(j, "e")?),
                op: op_from_json(j.get("op").ok_or("snapshot local has no op")?)?,
                ret: value_from_json(j.get("r").ok_or("snapshot local has no ret")?)?,
                anchor: match j.get("an") {
                    Some(_) => Some(StepId(get_u32(j, "an")?)),
                    None => None,
                },
            }),
            "S" => Ok(WalRecord::SnapshotComplete {
                step: StepId(get_u32(j, "s")?),
                ret: value_from_json(j.get("r").ok_or("snapshot complete has no ret")?)?,
            }),
            other => Err(format!("unknown record tag {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn round_trip(rec: WalRecord) {
        let text = rec.to_json().to_string();
        let back = WalRecord::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(rec, back, "round trip through {text}");
    }

    #[test]
    fn all_record_kinds_round_trip() {
        let deep = Value::Map(BTreeMap::from([
            (
                "k".to_owned(),
                Value::List(vec![Value::Int(-3), Value::Unit]),
            ),
            ("o".to_owned(), Value::Obj(ObjectId(7))),
        ]));
        round_trip(WalRecord::Header {
            version: FORMAT_VERSION,
            objects: vec!["x".into(), "emoji-✓".into()],
        });
        round_trip(WalRecord::BeginTop {
            exec: ExecId(0),
            name: "T0 \"quoted\"".into(),
        });
        round_trip(WalRecord::Invoke {
            step: StepId(3),
            parent: ExecId(0),
            child: ExecId(1),
            target: ObjectId(2),
            method: "enqueue".into(),
            args: vec![deep.clone(), Value::Bool(true), Value::Str("s".into())],
        });
        round_trip(WalRecord::Local {
            step: StepId(4),
            exec: ExecId(1),
            op: Operation::new("Append", [Value::Int(9), deep]),
            ret: Value::Int(i64::MIN),
        });
        round_trip(WalRecord::ProgramOrder {
            exec: ExecId(1),
            a: StepId(3),
            b: StepId(4),
        });
        round_trip(WalRecord::Complete {
            step: StepId(3),
            ret: Value::Unit,
        });
        round_trip(WalRecord::Abort { exec: ExecId(1) });
        round_trip(WalRecord::CommitTop { exec: ExecId(0) });
        round_trip(WalRecord::SnapshotInvoke {
            step: StepId(5),
            parent: ExecId(2),
            child: ExecId(3),
            target: ObjectId(1),
            method: "lookup".into(),
            args: vec![Value::Int(4)],
        });
        round_trip(WalRecord::SnapshotLocal {
            step: StepId(6),
            exec: ExecId(3),
            op: Operation::new("Lookup", [Value::Int(4)]),
            ret: Value::Str("v".into()),
            anchor: Some(StepId(2)),
        });
        round_trip(WalRecord::SnapshotLocal {
            step: StepId(7),
            exec: ExecId(3),
            op: Operation::nullary("Size"),
            ret: Value::Int(0),
            anchor: None,
        });
        round_trip(WalRecord::SnapshotComplete {
            step: StepId(5),
            ret: Value::Str("v".into()),
        });
    }

    #[test]
    fn malformed_documents_decode_to_errors() {
        for text in [
            "{}",
            "{\"t\":\"Z\"}",
            "{\"t\":\"B\",\"e\":-1,\"n\":\"T\"}",
            "{\"t\":\"B\",\"e\":0}",
            "{\"t\":\"L\",\"s\":0,\"e\":0,\"op\":{\"n\":\"R\"},\"r\":[\"i\",1]}",
            "{\"t\":\"L\",\"s\":0,\"e\":0,\"op\":{\"n\":\"R\",\"a\":[]},\"r\":[\"q\"]}",
            "[1,2,3]",
        ] {
            let j = Json::parse(text).expect("valid JSON");
            assert!(WalRecord::from_json(&j).is_err(), "accepted {text}");
        }
    }
}
