//! Small semantic types used by the core crate's own tests and by downstream
//! crates' tests.
//!
//! These are deliberately minimal; the full library of semantic object types
//! lives in the `obase-adt` crate. They are exported (not `#[cfg(test)]`)
//! because integration tests and sibling crates reuse them.

use crate::error::TypeError;
use crate::object::SemanticType;
use crate::op::{LocalStep, Operation};
use crate::value::Value;

/// An integer read/write register: operations `Read()` and `Write(v)`.
///
/// Conflict relation: `Read` commutes with `Read`; everything else conflicts.
/// This reproduces the classical read/write model inside the object-base
/// model and is the work-horse of the core crate's unit tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntRegister;

impl SemanticType for IntRegister {
    fn type_name(&self) -> &str {
        "IntRegister"
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, state: &Value, op: &Operation) -> Result<(Value, Value), TypeError> {
        let cur = state.as_int().ok_or_else(|| TypeError::BadState {
            type_name: self.type_name().into(),
            expected: "Int".into(),
        })?;
        match op.name.as_str() {
            "Read" => Ok((Value::Int(cur), Value::Int(cur))),
            "Write" => {
                let v = op.arg_int(0).ok_or_else(|| TypeError::BadArguments {
                    type_name: self.type_name().into(),
                    op: op.clone(),
                    expected: "Write(Int)".into(),
                })?;
                Ok((Value::Int(v), Value::Unit))
            }
            _ if op.is_abort() => Ok((Value::Int(cur), Value::Unit)),
            _ => Err(TypeError::UnknownOperation {
                type_name: self.type_name().into(),
                op: op.clone(),
            }),
        }
    }

    fn ops_conflict(&self, a: &Operation, b: &Operation) -> bool {
        if a.is_abort() || b.is_abort() {
            return false;
        }
        !(a.name == "Read" && b.name == "Read")
    }

    fn op_is_readonly(&self, op: &Operation) -> bool {
        op.name == "Read" || op.is_abort()
    }

    fn sample_states(&self) -> Vec<Value> {
        vec![Value::Int(0), Value::Int(1), Value::Int(-3), Value::Int(42)]
    }

    fn sample_operations(&self) -> Vec<Operation> {
        vec![
            Operation::nullary("Read"),
            Operation::unary("Write", 1),
            Operation::unary("Write", 2),
        ]
    }
}

/// An integer counter with commuting increments: operations `Get()`,
/// `Add(n)`.
///
/// `Add` commutes with `Add` (addition is commutative) but conflicts with
/// `Get`; `Get` commutes with `Get`. This is the simplest example of the
/// semantic (commutativity-based) conflict relation of Definition 3 being
/// strictly more permissive than read/write conflicts.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl SemanticType for Counter {
    fn type_name(&self) -> &str {
        "Counter"
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, state: &Value, op: &Operation) -> Result<(Value, Value), TypeError> {
        let cur = state.as_int().ok_or_else(|| TypeError::BadState {
            type_name: self.type_name().into(),
            expected: "Int".into(),
        })?;
        match op.name.as_str() {
            "Get" => Ok((Value::Int(cur), Value::Int(cur))),
            "Add" => {
                let n = op.arg_int(0).ok_or_else(|| TypeError::BadArguments {
                    type_name: self.type_name().into(),
                    op: op.clone(),
                    expected: "Add(Int)".into(),
                })?;
                Ok((Value::Int(cur + n), Value::Unit))
            }
            _ if op.is_abort() => Ok((Value::Int(cur), Value::Unit)),
            _ => Err(TypeError::UnknownOperation {
                type_name: self.type_name().into(),
                op: op.clone(),
            }),
        }
    }

    fn ops_conflict(&self, a: &Operation, b: &Operation) -> bool {
        if a.is_abort() || b.is_abort() {
            return false;
        }
        !matches!(
            (a.name.as_str(), b.name.as_str()),
            ("Get", "Get") | ("Add", "Add")
        )
    }

    fn steps_conflict(&self, a: &LocalStep, b: &LocalStep) -> bool {
        self.ops_conflict(&a.op, &b.op)
    }

    fn op_is_readonly(&self, op: &Operation) -> bool {
        op.name == "Get" || op.is_abort()
    }

    fn sample_states(&self) -> Vec<Value> {
        vec![Value::Int(0), Value::Int(5), Value::Int(-2)]
    }

    fn sample_operations(&self) -> Vec<Operation> {
        vec![
            Operation::nullary("Get"),
            Operation::unary("Add", 1),
            Operation::unary("Add", -1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_semantics() {
        let r = IntRegister;
        let (s, v) = r
            .apply(&Value::Int(3), &Operation::nullary("Read"))
            .unwrap();
        assert_eq!(s, Value::Int(3));
        assert_eq!(v, Value::Int(3));
        let (s, v) = r
            .apply(&Value::Int(3), &Operation::unary("Write", 9))
            .unwrap();
        assert_eq!(s, Value::Int(9));
        assert_eq!(v, Value::Unit);
        assert!(r.apply(&Value::Int(0), &Operation::nullary("Pop")).is_err());
        assert!(r.apply(&Value::Unit, &Operation::nullary("Read")).is_err());
    }

    #[test]
    fn register_conflicts() {
        let r = IntRegister;
        let read = Operation::nullary("Read");
        let write = Operation::unary("Write", 1);
        assert!(!r.ops_conflict(&read, &read));
        assert!(r.ops_conflict(&read, &write));
        assert!(r.ops_conflict(&write, &read));
        assert!(r.ops_conflict(&write, &write));
    }

    #[test]
    fn counter_semantics() {
        let c = Counter;
        let (s, _) = c
            .apply(&Value::Int(1), &Operation::unary("Add", 4))
            .unwrap();
        assert_eq!(s, Value::Int(5));
        let (_, v) = c.apply(&Value::Int(5), &Operation::nullary("Get")).unwrap();
        assert_eq!(v, Value::Int(5));
    }

    #[test]
    fn counter_adds_commute() {
        let c = Counter;
        let add = Operation::unary("Add", 1);
        let get = Operation::nullary("Get");
        assert!(!c.ops_conflict(&add, &add));
        assert!(c.ops_conflict(&add, &get));
        assert!(c.ops_conflict(&get, &add));
        assert!(!c.ops_conflict(&get, &get));
    }
}
