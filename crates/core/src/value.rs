//! Dynamic values used for object states, operation arguments and return
//! values.
//!
//! The paper leaves the domain of object states abstract: a state is "a
//! mapping associating values to the variables of an object" (Definition 1).
//! We use a small dynamically-typed value universe so that heterogeneous
//! object types (counters, queues, dictionaries, B-trees, ...) can coexist in
//! one object base and one history.

use crate::ids::ObjectId;
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed value.
///
/// `Value` doubles as the representation of object *states* (Definition 1),
/// operation *arguments* and operation *return values* (Definition 2).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Value {
    /// The unit value, used for operations that return nothing of interest.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A string.
    Str(String),
    /// A reference to an object in the object base (used to pass objects as
    /// method arguments, e.g. the accounts involved in a transfer).
    Obj(ObjectId),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map of values (used for record-like object states).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a map value from an iterator of `(key, value)` pairs.
    pub fn map<I, K>(entries: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a list value.
    pub fn list<I>(items: I) -> Value
    where
        I: IntoIterator<Item = Value>,
    {
        Value::List(items.into_iter().collect())
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the object id payload, if this is an [`Value::Obj`].
    pub fn as_object(&self) -> Option<ObjectId> {
        match self {
            Value::Obj(o) => Some(*o),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the map payload, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if this is [`Value::Unit`].
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Convenience accessor for an integer field of a map value.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Value::as_int)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<ObjectId> for Value {
    fn from(v: ObjectId) -> Self {
        Value::Obj(v)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Obj(o) => write!(f, "{o:?}"),
            Value::List(items) => f.debug_list().entries(items).finish(),
            Value::Map(m) => f.debug_map().entries(m).finish(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(ObjectId(2)), Value::Obj(ObjectId(2)));
        assert_eq!(Value::from(()), Value::Unit);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Unit.as_int(), None);
        assert!(Value::Unit.is_unit());
        assert_eq!(Value::Obj(ObjectId(1)).as_object(), Some(ObjectId(1)));
    }

    #[test]
    fn map_helpers() {
        let v = Value::map([("balance", Value::Int(10)), ("name", Value::from("acct"))]);
        assert_eq!(v.get_int("balance"), Some(10));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("acct"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn list_helpers() {
        let v = Value::list([Value::Int(1), Value::Int(2)]);
        assert_eq!(v.as_list().unwrap().len(), 2);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", Value::Int(7)), "7");
        assert_eq!(format!("{}", Value::Unit), "()");
        assert_eq!(format!("{}", Value::list([Value::Int(1)])), "[1]");
    }

    #[test]
    fn ordering_is_total() {
        let mut values = vec![Value::Int(2), Value::Unit, Value::Bool(true), Value::Int(1)];
        values.sort();
        // Sorting must not panic and must be deterministic.
        let again = {
            let mut v = values.clone();
            v.sort();
            v
        };
        assert_eq!(values, again);
    }
}
