//! Objects, semantic types and the object base.
//!
//! An object base is a set of objects; an object is a pair `(V, M)` of
//! variables and methods (Definition 1). This module models the *data* half
//! of an object — its state and the local operations applicable to it —
//! through the [`SemanticType`] trait. The *method* half (programs that issue
//! local operations and send messages) lives in the execution crate; the core
//! model only needs to know which local operations exist, how they transform
//! state, and when two steps conflict.

use crate::error::TypeError;
use crate::ids::ObjectId;
use crate::op::{LocalStep, Operation};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The semantics of an object's local operations.
///
/// A `SemanticType` supplies, for each operation `a`, the two functions of
/// Definition 2 — the return-value function `ρ_a` and the state transition
/// `σ_a` — folded into [`SemanticType::apply`], plus the conflict relation of
/// Definition 3 at two granularities:
///
/// * [`ops_conflict`](SemanticType::ops_conflict) — the conservative,
///   *operation-level* relation used when return values are not known in
///   advance (the "more common method" of Section 5.1);
/// * [`steps_conflict`](SemanticType::steps_conflict) — the exact,
///   *step-level* relation `(a, v)` vs `(a', v')` which may exploit return
///   values for extra concurrency (Weihl's observation, Section 5.1).
///
/// Implementations must guarantee the soundness property checked by
/// [`crate::conflict`]: if two steps are declared non-conflicting, then they
/// commute on every reachable state in the sense of Definition 3.
pub trait SemanticType: Send + Sync + fmt::Debug {
    /// Human-readable type name, e.g. `"Counter"` or `"FifoQueue"`.
    fn type_name(&self) -> &str;

    /// The default initial state of objects of this type.
    fn initial_state(&self) -> Value;

    /// Applies operation `op` to `state`, returning the new state and the
    /// return value (σ_a(s) and ρ_a(s) of Definition 2).
    ///
    /// Returns an error if the operation is unknown or its arguments are
    /// malformed for this type. Operation application must be deterministic.
    fn apply(&self, state: &Value, op: &Operation) -> Result<(Value, Value), TypeError>;

    /// Conservative operation-level conflict relation: `a` conflicts with
    /// `a'` if there exist steps `t = (a, v)` and `t' = (a', v')` such that
    /// `t` conflicts with `t'` (Section 5.1, implementation considerations).
    ///
    /// The relation need not be symmetric (Definition 3 remarks that
    /// commutativity is not necessarily symmetric), although most practical
    /// specifications are.
    fn ops_conflict(&self, a: &Operation, b: &Operation) -> bool;

    /// Exact step-level conflict relation on steps `(a, v)`.
    ///
    /// `a.conflicts_with(b)` in the directional sense of Definition 3: `a`
    /// conflicts with `b` iff `a` does not commute with `b`. The default
    /// falls back to the conservative operation-level relation.
    fn steps_conflict(&self, a: &LocalStep, b: &LocalStep) -> bool {
        self.ops_conflict(&a.op, &b.op)
    }

    /// Whether the operation leaves the state unchanged on every state
    /// (σ_a = identity). Used by flat read/write baselines to map semantic
    /// operations onto read/write locks.
    fn op_is_readonly(&self, _op: &Operation) -> bool {
        false
    }

    /// A set of representative states used by the generic, state-based
    /// commutativity checker in [`crate::conflict`] (property tests use this
    /// to validate that the declared conflict relations are sound).
    fn sample_states(&self) -> Vec<Value> {
        vec![self.initial_state()]
    }

    /// A set of representative operations of this type, used by generators
    /// and by the generic conflict-spec validator.
    fn sample_operations(&self) -> Vec<Operation> {
        Vec::new()
    }
}

/// Shared handle to a semantic type.
pub type TypeHandle = Arc<dyn SemanticType>;

/// The static description of one object in the object base: its identity,
/// name, semantic type and initial state.
#[derive(Clone)]
pub struct ObjectSpec {
    /// The object's identity.
    pub id: ObjectId,
    /// A human-readable name (unique within the object base).
    pub name: String,
    /// The object's semantic type.
    pub ty: TypeHandle,
    /// The object's initial state (the `S` component of a history supplies
    /// one initial state per object; this is the default used when building
    /// histories over this base).
    pub initial_state: Value,
}

impl fmt::Debug for ObjectSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectSpec")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("type", &self.ty.type_name())
            .field("initial_state", &self.initial_state)
            .finish()
    }
}

/// An object base: a set of objects (Definition 1).
///
/// The environment object is implicit — it is not stored here because it has
/// no variables and no local operations; its method executions (the
/// top-level transactions) reference [`ObjectId::ENVIRONMENT`].
#[derive(Clone, Debug, Default)]
pub struct ObjectBase {
    objects: Vec<ObjectSpec>,
    by_name: BTreeMap<String, ObjectId>,
}

impl ObjectBase {
    /// Creates an empty object base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an object with the type's default initial state, returning its id.
    ///
    /// # Panics
    /// Panics if the name is already in use.
    pub fn add_object(&mut self, name: impl Into<String>, ty: TypeHandle) -> ObjectId {
        let initial = ty.initial_state();
        self.add_object_with_state(name, ty, initial)
    }

    /// Adds an object with an explicit initial state, returning its id.
    ///
    /// # Panics
    /// Panics if the name is already in use.
    pub fn add_object_with_state(
        &mut self,
        name: impl Into<String>,
        ty: TypeHandle,
        initial_state: Value,
    ) -> ObjectId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "object name {name:?} already in use"
        );
        let id = ObjectId(self.objects.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.objects.push(ObjectSpec {
            id,
            name,
            ty,
            initial_state,
        });
        id
    }

    /// Looks up an object by id.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectSpec> {
        if id.is_environment() {
            return None;
        }
        self.objects.get(id.index())
    }

    /// Looks up an object by id, panicking if absent.
    ///
    /// # Panics
    /// Panics if `id` is the environment or is not in this base.
    pub fn spec(&self, id: ObjectId) -> &ObjectSpec {
        self.get(id)
            .unwrap_or_else(|| panic!("object {id:?} not present in object base"))
    }

    /// Looks up an object by name.
    pub fn by_name(&self, name: &str) -> Option<&ObjectSpec> {
        self.by_name.get(name).map(|id| &self.objects[id.index()])
    }

    /// Returns the semantic type of an object.
    ///
    /// # Panics
    /// Panics if `id` is the environment or is not in this base.
    pub fn type_of(&self, id: ObjectId) -> TypeHandle {
        Arc::clone(&self.spec(id).ty)
    }

    /// Iterates over all objects in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectSpec> {
        self.objects.iter()
    }

    /// Iterates over all object ids in id order.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.iter().map(|o| o.id)
    }

    /// Number of objects (excluding the implicit environment).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if the base has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Returns `true` if `id` refers to an object of this base (the
    /// environment is always considered present).
    pub fn contains(&self, id: ObjectId) -> bool {
        id.is_environment() || id.index() < self.objects.len()
    }

    /// The default initial states of all objects, as used for the `S`
    /// component of a history built over this base.
    pub fn initial_states(&self) -> BTreeMap<ObjectId, Value> {
        self.objects
            .iter()
            .map(|o| (o.id, o.initial_state.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::IntRegister;

    #[test]
    fn add_and_lookup() {
        let mut base = ObjectBase::new();
        let a = base.add_object("a", Arc::new(IntRegister));
        let b = base.add_object_with_state("b", Arc::new(IntRegister), Value::Int(7));
        assert_eq!(base.len(), 2);
        assert!(!base.is_empty());
        assert_eq!(base.spec(a).name, "a");
        assert_eq!(base.spec(b).initial_state, Value::Int(7));
        assert_eq!(base.by_name("b").unwrap().id, b);
        assert!(base.by_name("c").is_none());
        assert!(base.contains(a));
        assert!(base.contains(ObjectId::ENVIRONMENT));
        assert!(!base.contains(ObjectId(99)));
        assert!(base.get(ObjectId::ENVIRONMENT).is_none());
        assert_eq!(base.object_ids().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_names_rejected() {
        let mut base = ObjectBase::new();
        base.add_object("a", Arc::new(IntRegister));
        base.add_object("a", Arc::new(IntRegister));
    }

    #[test]
    fn initial_states_map() {
        let mut base = ObjectBase::new();
        let a = base.add_object("a", Arc::new(IntRegister));
        let states = base.initial_states();
        assert_eq!(states.get(&a), Some(&Value::Int(0)));
    }

    #[test]
    fn default_readonly_is_false() {
        let ty = IntRegister;
        assert!(ty.op_is_readonly(&Operation::nullary("Read")));
        assert!(!ty.op_is_readonly(&Operation::unary("Write", 1)));
    }
}
