//! Replay of histories and the well-definedness theorem (Theorem 1).
//!
//! Condition 3 of Definition 6 requires, for every object, a topological sort
//! of its local steps (consistent with `<`) that is legal on the object's
//! initial state. Theorem 1 states that the choice of sort does not matter:
//! every such sort is legal and yields the same final state. This module
//! implements the replay machinery and an executable check of Theorem 1 used
//! by property tests.

use crate::error::LegalityError;
use crate::history::History;
use crate::ids::{ObjectId, StepId};
use crate::value::Value;
use std::collections::BTreeMap;

/// Replays the local steps of object `o` in the given order, verifying that
/// each recorded return value matches what the operation actually returns.
/// Returns the final state.
pub fn replay_order(h: &History, o: ObjectId, order: &[StepId]) -> Result<Value, LegalityError> {
    let ty = h.base().type_of(o);
    let mut state = h.initial_state(o);
    for &sid in order {
        let step = h.step(sid);
        let local = step
            .as_local()
            .expect("replay_order applied to a message step");
        if local.is_abort() {
            continue;
        }
        let (next, ret) =
            ty.apply(&state, &local.op)
                .map_err(|error| LegalityError::ReplayFailed {
                    object: o,
                    step: sid,
                    error,
                })?;
        if ret != local.ret {
            return Err(LegalityError::IllegalReturnValue {
                object: o,
                step: sid,
                detail: format!("recorded {:?} but replay produced {ret:?}", local.ret),
            });
        }
        state = next;
    }
    Ok(state)
}

/// Applies the local steps of object `o` in the given order *without*
/// verifying return values, returning the final state. Returns `None` if an
/// operation cannot be applied at all.
pub fn apply_order(h: &History, o: ObjectId, order: &[StepId]) -> Option<Value> {
    let ty = h.base().type_of(o);
    let mut state = h.initial_state(o);
    for &sid in order {
        let local = h.step(sid).as_local()?;
        if local.is_abort() {
            continue;
        }
        let (next, _) = ty.apply(&state, &local.op).ok()?;
        state = next;
    }
    Some(state)
}

/// The final state of object `o` after the history, computed by replaying the
/// canonical topological sort of its local steps (Condition 3 / Theorem 1).
pub fn final_state(h: &History, o: ObjectId) -> Result<Value, LegalityError> {
    let order = h.topo_local_steps(o);
    replay_order(h, o, &order)
}

/// The final states of every object touched by the history.
pub fn final_states(h: &History) -> Result<BTreeMap<ObjectId, Value>, LegalityError> {
    let mut out = BTreeMap::new();
    for o in h.objects_touched() {
        out.insert(o, final_state(h, o)?);
    }
    Ok(out)
}

/// Enumerates up to `limit` linear extensions of `<` restricted to the local
/// steps of object `o`. Used by the Theorem 1 checker and by tests.
pub fn linear_extensions(h: &History, o: ObjectId, limit: usize) -> Vec<Vec<StepId>> {
    let steps = h.local_steps_of_object(o);
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    let mut remaining: Vec<StepId> = steps.clone();
    fn recurse(
        h: &History,
        prefix: &mut Vec<StepId>,
        remaining: &mut Vec<StepId>,
        out: &mut Vec<Vec<StepId>>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if remaining.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..remaining.len() {
            let candidate = remaining[i];
            // `candidate` may be scheduled next iff no remaining step must
            // precede it.
            let blocked = remaining
                .iter()
                .any(|&other| other != candidate && h.precedes(other, candidate));
            if blocked {
                continue;
            }
            let removed = remaining.remove(i);
            prefix.push(removed);
            recurse(h, prefix, remaining, out, limit);
            prefix.pop();
            remaining.insert(i, removed);
            if out.len() >= limit {
                return;
            }
        }
    }
    recurse(h, &mut prefix, &mut remaining, &mut out, limit);
    out
}

/// An executable statement of Theorem 1 for one object: every linear
/// extension of `<` over the object's local steps (up to `limit` of them) is
/// legal on the initial state and produces the same final state.
pub fn theorem1_holds(h: &History, o: ObjectId, limit: usize) -> bool {
    let extensions = linear_extensions(h, o, limit);
    let mut expected: Option<Value> = None;
    for ext in &extensions {
        match replay_order(h, o, ext) {
            Ok(state) => match &expected {
                None => expected = Some(state),
                Some(prev) => {
                    if *prev != state {
                        return false;
                    }
                }
            },
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::history::Interval;
    use crate::object::ObjectBase;
    use crate::op::Operation;
    use crate::testutil::{Counter, IntRegister};
    use std::sync::Arc;

    #[test]
    fn final_state_of_sequential_writes() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        b.local_applied(e, Operation::unary("Write", 1)).unwrap();
        b.local_applied(e, Operation::unary("Write", 2)).unwrap();
        let h = b.build();
        assert_eq!(final_state(&h, x).unwrap(), Value::Int(2));
        assert_eq!(final_states(&h).unwrap().len(), 1);
    }

    #[test]
    fn theorem1_on_commuting_unordered_steps() {
        let mut base = ObjectBase::new();
        let c = base.add_object("c", Arc::new(Counter));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t1 = b.begin_top_level("T1");
        let (_, e1) = b.invoke(t1, c, "m", []);
        let t2 = b.begin_top_level("T2");
        let (_, e2) = b.invoke(t2, c, "m", []);
        b.local_with_interval(e1, Operation::unary("Add", 2), (), Interval::new(10, 20));
        b.local_with_interval(e2, Operation::unary("Add", 3), (), Interval::new(15, 25));
        let h = b.build();
        // Two unordered, commuting adds: both linear extensions exist and
        // agree on the final state 5.
        let exts = linear_extensions(&h, c, 10);
        assert_eq!(exts.len(), 2);
        assert!(theorem1_holds(&h, c, 10));
        assert_eq!(final_state(&h, c).unwrap(), Value::Int(5));
    }

    #[test]
    fn ordered_steps_have_single_extension() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        b.local_applied(e, Operation::unary("Write", 1)).unwrap();
        b.local_applied(e, Operation::nullary("Read")).unwrap();
        let h = b.build();
        assert_eq!(linear_extensions(&h, x, 10).len(), 1);
        assert!(theorem1_holds(&h, x, 10));
    }

    #[test]
    fn wrong_return_value_fails_replay() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        b.local(e, Operation::nullary("Read"), Value::Int(99));
        let h = b.build();
        assert!(final_state(&h, x).is_err());
        assert!(!theorem1_holds(&h, x, 10));
    }

    #[test]
    fn abort_steps_are_skipped_in_replay() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        b.local_applied(e, Operation::unary("Write", 1)).unwrap();
        b.abort(e);
        let h = b.build();
        // The abort step itself has no effect on the state.
        assert_eq!(final_state(&h, x).unwrap(), Value::Int(1));
    }
}
