//! A small directed-graph utility used by the serialisation-graph machinery.
//!
//! Nodes are any `Copy + Ord` key (in practice [`ExecId`](crate::ids::ExecId)).
//! The graph supports exactly the operations the serialisability theorems
//! need: edge insertion, acyclicity testing, cycle extraction, topological
//! sorting and union.

use std::collections::{BTreeMap, BTreeSet};

/// A directed graph over copyable, ordered node keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph<N: Copy + Ord> {
    adj: BTreeMap<N, BTreeSet<N>>,
}

impl<N: Copy + Ord> Default for DiGraph<N> {
    fn default() -> Self {
        DiGraph {
            adj: BTreeMap::new(),
        }
    }
}

impl<N: Copy + Ord> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            adj: BTreeMap::new(),
        }
    }

    /// Adds a node (no-op if present).
    pub fn add_node(&mut self, n: N) {
        self.adj.entry(n).or_default();
    }

    /// Adds an edge (and both endpoints).
    pub fn add_edge(&mut self, from: N, to: N) {
        self.adj.entry(from).or_default().insert(to);
        self.adj.entry(to).or_default();
    }

    /// Returns `true` if the edge is present.
    pub fn has_edge(&self, from: N, to: N) -> bool {
        self.adj.get(&from).is_some_and(|s| s.contains(&to))
    }

    /// Returns `true` if the node is present.
    pub fn has_node(&self, n: N) -> bool {
        self.adj.contains_key(&n)
    }

    /// Iterates over all nodes in key order.
    pub fn nodes(&self) -> impl Iterator<Item = N> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates over all edges in key order.
    pub fn edges(&self) -> impl Iterator<Item = (N, N)> + '_ {
        self.adj
            .iter()
            .flat_map(|(&from, tos)| tos.iter().map(move |&to| (from, to)))
    }

    /// The successors of a node.
    pub fn successors(&self, n: N) -> impl Iterator<Item = N> + '_ {
        self.adj.get(&n).into_iter().flatten().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(BTreeSet::len).sum()
    }

    /// The union of two graphs (nodes and edges).
    pub fn union(&self, other: &DiGraph<N>) -> DiGraph<N> {
        let mut out = self.clone();
        for n in other.nodes() {
            out.add_node(n);
        }
        for (a, b) in other.edges() {
            out.add_edge(a, b);
        }
        out
    }

    /// The restriction of the graph to a subset of its nodes.
    pub fn restrict_to(&self, keep: &BTreeSet<N>) -> DiGraph<N> {
        let mut out = DiGraph::new();
        for &n in keep {
            if self.has_node(n) {
                out.add_node(n);
            }
        }
        for (a, b) in self.edges() {
            if keep.contains(&a) && keep.contains(&b) {
                out.add_edge(a, b);
            }
        }
        out
    }

    /// Returns a topological order of the nodes, or `None` if the graph has a
    /// cycle. The order is deterministic: among available nodes the smallest
    /// key is emitted first (Kahn's algorithm with an ordered frontier).
    pub fn topological_order(&self) -> Option<Vec<N>> {
        let mut indegree: BTreeMap<N, usize> = self.adj.keys().map(|&n| (n, 0)).collect();
        for (_, to) in self.edges() {
            *indegree.get_mut(&to).expect("edge endpoint present") += 1;
        }
        let mut ready: BTreeSet<N> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut out = Vec::with_capacity(self.adj.len());
        while let Some(&n) = ready.iter().next() {
            ready.remove(&n);
            out.push(n);
            for succ in self.successors(n) {
                let d = indegree.get_mut(&succ).expect("successor present");
                *d -= 1;
                if *d == 0 {
                    ready.insert(succ);
                }
            }
        }
        if out.len() == self.adj.len() {
            Some(out)
        } else {
            None
        }
    }

    /// Returns `true` if the graph has no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Finds some directed cycle, returned as a list of nodes (the last node
    /// has an edge back to the first), or `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<N>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<N, Colour> =
            self.adj.keys().map(|&n| (n, Colour::White)).collect();
        let mut stack: Vec<N> = Vec::new();

        fn dfs<N: Copy + Ord>(
            g: &DiGraph<N>,
            n: N,
            colour: &mut BTreeMap<N, Colour>,
            stack: &mut Vec<N>,
        ) -> Option<Vec<N>> {
            colour.insert(n, Colour::Grey);
            stack.push(n);
            for succ in g.successors(n) {
                match colour[&succ] {
                    Colour::Grey => {
                        let pos = stack.iter().position(|&x| x == succ).expect("on stack");
                        return Some(stack[pos..].to_vec());
                    }
                    Colour::White => {
                        if let Some(c) = dfs(g, succ, colour, stack) {
                            return Some(c);
                        }
                    }
                    Colour::Black => {}
                }
            }
            stack.pop();
            colour.insert(n, Colour::Black);
            None
        }

        let nodes: Vec<N> = self.adj.keys().copied().collect();
        for n in nodes {
            if colour[&n] == Colour::White {
                if let Some(c) = dfs(self, n, &mut colour, &mut stack) {
                    return Some(c);
                }
                stack.clear();
            }
        }
        None
    }

    /// Returns `true` if `to` is reachable from `from` by a non-empty path.
    pub fn reaches(&self, from: N, to: N) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<N> = self.successors(from).collect();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                stack.extend(self.successors(n));
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_order_of_dag() {
        let mut g = DiGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(1, 3);
        g.add_node(0);
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), 4);
        let pos = |n: i32| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert!(g.is_acyclic());
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn cycle_detection() {
        let mut g = DiGraph::new();
        g.add_edge('a', 'b');
        g.add_edge('b', 'c');
        g.add_edge('c', 'a');
        g.add_edge('x', 'a');
        assert!(!g.is_acyclic());
        assert!(g.topological_order().is_none());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
        // Each node on the cycle has an edge to the next.
        for i in 0..cycle.len() {
            assert!(g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new();
        g.add_edge(1, 1);
        assert!(!g.is_acyclic());
        assert_eq!(g.find_cycle().unwrap(), vec![1]);
    }

    #[test]
    fn union_and_restrict() {
        let mut g1 = DiGraph::new();
        g1.add_edge(1, 2);
        let mut g2 = DiGraph::new();
        g2.add_edge(2, 3);
        let u = g1.union(&g2);
        assert!(u.has_edge(1, 2));
        assert!(u.has_edge(2, 3));
        assert_eq!(u.node_count(), 3);
        assert_eq!(u.edge_count(), 2);
        let keep: BTreeSet<i32> = [2, 3].into_iter().collect();
        let r = u.restrict_to(&keep);
        assert!(!r.has_node(1));
        assert!(r.has_edge(2, 3));
    }

    #[test]
    fn reachability() {
        let mut g = DiGraph::new();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_node(4);
        assert!(g.reaches(1, 3));
        assert!(!g.reaches(3, 1));
        assert!(!g.reaches(1, 4));
        // Reachability requires a non-empty path.
        assert!(!g.reaches(4, 4));
    }

    #[test]
    fn deterministic_topo_order() {
        let mut g = DiGraph::new();
        for n in 0..5 {
            g.add_node(n);
        }
        assert_eq!(g.topological_order().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
