//! Append-only history recording for concurrent execution backends.
//!
//! The simulator records its history by calling [`HistoryBuilder`] directly:
//! it is single-threaded, so every record call happens at a well-defined
//! point of the one global interleaving. A multi-threaded backend cannot do
//! that without serialising every step through the builder's lock — which is
//! exactly the control-plane bottleneck the parallel engine's decomposed
//! control plane removes. This module provides the alternative:
//!
//! * [`HistoryRecorder`] — the recording contract both styles implement. The
//!   caller (the lifecycle kernel or an engine driver) allocates execution
//!   ids; the recorder allocates step ids and remembers the events.
//! * [`HistoryBuilder`] implements it directly (the simulator's path, zero
//!   overhead, final ids handed out immediately).
//! * [`BufferedRecorder`] implements it by appending [`Stamped`] events to a
//!   thread-local [`EventBuffer`], with two shared atomics (a global
//!   sequence counter and a provisional step-id counter) from a
//!   [`RecordClock`]. No lock is taken per event: the sequence number is
//!   drawn *inside* whatever critical section orders the event with its
//!   peers (the object's store shard for installs, the lifecycle lock for
//!   begins/commits/aborts), so sorting by sequence number reproduces a
//!   valid linearisation of the run.
//! * [`stitch`] — the flush: merges every buffer by sequence number and
//!   replays the events through a fresh [`HistoryBuilder`], translating
//!   provisional step ids to final ones. The resulting history is exactly
//!   the history a direct recorder would have produced for the same
//!   linearisation — [`same_structure`] states that equivalence and the
//!   tests here verify it on randomised event streams.
//!
//! The two paths are interchangeable behind [`HistoryRecorder`]:
//!
//! ```
//! use obase_core::builder::HistoryBuilder;
//! use obase_core::ids::{ExecId, ObjectId};
//! use obase_core::object::ObjectBase;
//! use obase_core::op::Operation;
//! use obase_core::record::{
//!     same_structure, stitch, BufferedRecorder, EventBuffer, HistoryRecorder, RecordClock,
//! };
//! use obase_core::value::Value;
//! use std::sync::Arc;
//!
//! // One register object; execution ids are allocated by the caller (the
//! // lifecycle kernel, in a real run).
//! let mut base = ObjectBase::new();
//! let x = base.add_object("x", Arc::new(obase_core::testutil::IntRegister));
//! let base = Arc::new(base);
//! let (top, child) = (ExecId(0), ExecId(1));
//!
//! // Record the same tiny run through both recorders.
//! let record = |rec: &mut dyn HistoryRecorder| {
//!     rec.record_begin_top(top, "T0");
//!     let msg = rec.record_invoke(top, child, x, "set", vec![Value::Int(5)]);
//!     rec.record_local(child, Operation::unary("Write", 5), Value::Unit);
//!     rec.record_complete(msg, Value::Unit);
//! };
//! let mut direct = HistoryBuilder::new(Arc::clone(&base));
//! direct.set_auto_program_order(false);
//! record(&mut direct);
//!
//! let clock = RecordClock::new();
//! let mut buf = EventBuffer::new();
//! record(&mut BufferedRecorder::new(&clock, &mut buf));
//!
//! // Stitching the buffers reproduces the directly built history.
//! let stitched = stitch(base, [buf]);
//! assert!(same_structure(&direct.build(), &stitched));
//! ```

use crate::builder::HistoryBuilder;
use crate::history::History;
use crate::ids::{ExecId, ObjectId, StepId};
use crate::object::ObjectBase;
use crate::op::Operation;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// The recording half of the transaction lifecycle: every history-shaping
/// event the kernel or a driver emits goes through this trait.
///
/// Execution ids are allocated by the *caller* (the lifecycle registry is
/// the authority on execution numbering); step ids are allocated by the
/// recorder and are only promised to be unique — a buffered recorder hands
/// out provisional ids that [`stitch`] later maps to dense final ones.
pub trait HistoryRecorder {
    /// A top-level transaction `exec` named `name` begins.
    fn record_begin_top(&mut self, exec: ExecId, name: &str);

    /// `parent` sends the message step invoking `method` on `target`,
    /// creating child execution `child`. Returns the message step's id.
    fn record_invoke(
        &mut self,
        parent: ExecId,
        child: ExecId,
        target: ObjectId,
        method: &str,
        args: Vec<Value>,
    ) -> StepId;

    /// `exec` installed a local step. Returns the step's id.
    fn record_local(&mut self, exec: ExecId, op: Operation, ret: Value) -> StepId;

    /// An explicit program-order edge `a ⊲ b` within `exec`.
    fn record_program_order(&mut self, exec: ExecId, a: StepId, b: StepId);

    /// The message step `step` completes, returning `ret` to the sender.
    fn record_complete(&mut self, step: StepId, ret: Value);

    /// `exec` aborts (records the distinguished abort step).
    fn record_abort(&mut self, exec: ExecId);

    /// The top-level transaction `exec` committed. The in-memory history
    /// derives commitment from the *absence* of an abort mark, so the
    /// default does nothing; durable recorders (the `obase-wal` write-ahead
    /// log) override this to persist the commit record — the point at which
    /// a transaction's steps survive a crash.
    fn record_commit_top(&mut self, exec: ExecId) {
        let _ = exec;
    }

    /// A message step of a snapshot-read transaction (see
    /// [`HistoryBuilder::snapshot_invoke`]): no clock tick, interval deferred
    /// to the span of the subtree.
    fn record_snapshot_invoke(
        &mut self,
        parent: ExecId,
        child: ExecId,
        target: ObjectId,
        method: &str,
        args: Vec<Value>,
    ) -> StepId;

    /// A local read of a snapshot transaction, anchored just after the last
    /// step of the committed version it observed (`None` = before every
    /// clock-allocated step). See [`HistoryBuilder::snapshot_local`].
    fn record_snapshot_local(
        &mut self,
        exec: ExecId,
        op: Operation,
        ret: Value,
        anchor: Option<StepId>,
    ) -> StepId;

    /// A snapshot message step's return value (interval stays deferred). See
    /// [`HistoryBuilder::snapshot_complete`].
    fn record_snapshot_complete(&mut self, step: StepId, ret: Value);
}

impl HistoryRecorder for HistoryBuilder {
    fn record_begin_top(&mut self, exec: ExecId, name: &str) {
        let allocated = self.begin_top_level(name.to_owned());
        debug_assert_eq!(
            allocated, exec,
            "builder and lifecycle registry disagree on execution numbering"
        );
    }

    fn record_invoke(
        &mut self,
        parent: ExecId,
        child: ExecId,
        target: ObjectId,
        method: &str,
        args: Vec<Value>,
    ) -> StepId {
        let (msg, allocated) = self.invoke(parent, target, method.to_owned(), args);
        debug_assert_eq!(
            allocated, child,
            "builder and lifecycle registry disagree on execution numbering"
        );
        msg
    }

    fn record_local(&mut self, exec: ExecId, op: Operation, ret: Value) -> StepId {
        self.local(exec, op, ret)
    }

    fn record_program_order(&mut self, exec: ExecId, a: StepId, b: StepId) {
        self.program_order_edge(exec, a, b);
    }

    fn record_complete(&mut self, step: StepId, ret: Value) {
        self.complete_invoke(step, ret);
    }

    fn record_abort(&mut self, exec: ExecId) {
        self.abort(exec);
    }

    fn record_snapshot_invoke(
        &mut self,
        parent: ExecId,
        child: ExecId,
        target: ObjectId,
        method: &str,
        args: Vec<Value>,
    ) -> StepId {
        let (msg, allocated) = self.snapshot_invoke(parent, target, method.to_owned(), args);
        debug_assert_eq!(
            allocated, child,
            "builder and lifecycle registry disagree on execution numbering"
        );
        msg
    }

    fn record_snapshot_local(
        &mut self,
        exec: ExecId,
        op: Operation,
        ret: Value,
        anchor: Option<StepId>,
    ) -> StepId {
        self.snapshot_local(exec, op, ret, anchor)
    }

    fn record_snapshot_complete(&mut self, step: StepId, ret: Value) {
        self.snapshot_complete(step, ret);
    }
}

/// One recorded lifecycle event. Step ids inside are *provisional* (from
/// [`RecordClock::next_step`]); [`stitch`] maps them to final dense ids.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A top-level transaction began.
    BeginTop {
        /// The transaction's execution id.
        exec: ExecId,
        /// The transaction's label.
        name: String,
    },
    /// A message step: `parent` invoked `method` on `target`, creating
    /// `child`.
    Invoke {
        /// Provisional id of the message step.
        step: StepId,
        /// The invoking execution.
        parent: ExecId,
        /// The created child execution.
        child: ExecId,
        /// The target object.
        target: ObjectId,
        /// The invoked method.
        method: String,
        /// The invocation arguments.
        args: Vec<Value>,
    },
    /// A local step installed by `exec`.
    Local {
        /// Provisional id of the step.
        step: StepId,
        /// The issuing execution.
        exec: ExecId,
        /// The operation.
        op: Operation,
        /// The observed return value.
        ret: Value,
    },
    /// A program-order edge `a ⊲ b` within `exec`.
    ProgramOrder {
        /// The execution the edge belongs to.
        exec: ExecId,
        /// The earlier step (provisional id).
        a: StepId,
        /// The later step (provisional id).
        b: StepId,
    },
    /// The message step `step` completed with return value `ret`.
    Complete {
        /// Provisional id of the message step.
        step: StepId,
        /// The value returned to the sender.
        ret: Value,
    },
    /// `exec` aborted.
    Abort {
        /// The aborted execution.
        exec: ExecId,
    },
    /// A snapshot-read message step (deferred interval).
    SnapshotInvoke {
        /// Provisional id of the message step.
        step: StepId,
        /// The invoking execution.
        parent: ExecId,
        /// The created child execution.
        child: ExecId,
        /// The target object.
        target: ObjectId,
        /// The invoked method.
        method: String,
        /// The invocation arguments.
        args: Vec<Value>,
    },
    /// A snapshot read, anchored to the committed version it observed.
    SnapshotLocal {
        /// Provisional id of the step.
        step: StepId,
        /// The issuing execution.
        exec: ExecId,
        /// The (read-only) operation.
        op: Operation,
        /// The observed return value.
        ret: Value,
        /// Provisional id of the observed version's last step, if any.
        anchor: Option<StepId>,
    },
    /// A snapshot message step's return value.
    SnapshotComplete {
        /// Provisional id of the message step.
        step: StepId,
        /// The value returned to the sender.
        ret: Value,
    },
}

/// An [`Event`] stamped with its global sequence number.
#[derive(Clone, Debug, PartialEq)]
pub struct Stamped {
    /// Position in the run's linearisation (unique across all buffers).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

/// The shared counters of one buffered-recording run: the global sequence
/// number and the provisional step-id allocator. Both are single atomics, so
/// drawing from them never blocks.
#[derive(Debug, Default)]
pub struct RecordClock {
    seq: AtomicU64,
    steps: AtomicU32,
}

impl RecordClock {
    /// A fresh clock (sequence and step ids start at zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws the next sequence number. Call this *inside* the critical
    /// section that orders the event with its peers.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a provisional step id.
    pub fn next_step(&self) -> StepId {
        StepId(self.steps.fetch_add(1, Ordering::Relaxed))
    }
}

/// A thread-local buffer of stamped events — one per activity (worker-side
/// top-level transaction or `Par` branch). Appending never takes a lock.
#[derive(Debug, Default)]
pub struct EventBuffer {
    events: Vec<Stamped>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A [`HistoryRecorder`] over one activity's [`EventBuffer`] and the run's
/// shared [`RecordClock`]. Construct one per record site; it borrows both.
#[derive(Debug)]
pub struct BufferedRecorder<'a> {
    clock: &'a RecordClock,
    buf: &'a mut EventBuffer,
}

impl<'a> BufferedRecorder<'a> {
    /// A recorder writing into `buf`, stamped by `clock`.
    pub fn new(clock: &'a RecordClock, buf: &'a mut EventBuffer) -> Self {
        BufferedRecorder { clock, buf }
    }

    fn push(&mut self, event: Event) {
        self.buf.events.push(Stamped {
            seq: self.clock.next_seq(),
            event,
        });
    }
}

impl HistoryRecorder for BufferedRecorder<'_> {
    fn record_begin_top(&mut self, exec: ExecId, name: &str) {
        self.push(Event::BeginTop {
            exec,
            name: name.to_owned(),
        });
    }

    fn record_invoke(
        &mut self,
        parent: ExecId,
        child: ExecId,
        target: ObjectId,
        method: &str,
        args: Vec<Value>,
    ) -> StepId {
        let step = self.clock.next_step();
        self.push(Event::Invoke {
            step,
            parent,
            child,
            target,
            method: method.to_owned(),
            args,
        });
        step
    }

    fn record_local(&mut self, exec: ExecId, op: Operation, ret: Value) -> StepId {
        let step = self.clock.next_step();
        self.push(Event::Local {
            step,
            exec,
            op,
            ret,
        });
        step
    }

    fn record_program_order(&mut self, exec: ExecId, a: StepId, b: StepId) {
        self.push(Event::ProgramOrder { exec, a, b });
    }

    fn record_complete(&mut self, step: StepId, ret: Value) {
        self.push(Event::Complete { step, ret });
    }

    fn record_abort(&mut self, exec: ExecId) {
        self.push(Event::Abort { exec });
    }

    fn record_snapshot_invoke(
        &mut self,
        parent: ExecId,
        child: ExecId,
        target: ObjectId,
        method: &str,
        args: Vec<Value>,
    ) -> StepId {
        let step = self.clock.next_step();
        self.push(Event::SnapshotInvoke {
            step,
            parent,
            child,
            target,
            method: method.to_owned(),
            args,
        });
        step
    }

    fn record_snapshot_local(
        &mut self,
        exec: ExecId,
        op: Operation,
        ret: Value,
        anchor: Option<StepId>,
    ) -> StepId {
        let step = self.clock.next_step();
        self.push(Event::SnapshotLocal {
            step,
            exec,
            op,
            ret,
            anchor,
        });
        step
    }

    fn record_snapshot_complete(&mut self, step: StepId, ret: Value) {
        self.push(Event::SnapshotComplete { step, ret });
    }
}

/// Stitches per-activity event buffers into the run's history: merges all
/// events by sequence number and replays them through a fresh
/// [`HistoryBuilder`], translating provisional step ids to final dense ones.
///
/// The replay reproduces execution numbering exactly (begin/invoke sequence
/// numbers are drawn under the same lock that allocates execution ids, so
/// replay order equals allocation order — asserted here), which is what lets
/// the theory oracle consume a stitched history exactly as it consumes a
/// directly recorded one.
///
/// # Panics
/// Panics if the event stream is inconsistent (an unknown provisional step
/// id, or execution numbering that does not match the builder's).
pub fn stitch(base: Arc<ObjectBase>, buffers: impl IntoIterator<Item = EventBuffer>) -> History {
    let mut events: Vec<Stamped> = buffers.into_iter().flat_map(|b| b.events).collect();
    events.sort_by_key(|s| s.seq);
    let mut builder = HistoryBuilder::new(base);
    builder.set_auto_program_order(false);
    let mut final_id: BTreeMap<StepId, StepId> = BTreeMap::new();
    let lookup = |map: &BTreeMap<StepId, StepId>, s: StepId| -> StepId {
        *map.get(&s)
            .unwrap_or_else(|| panic!("event stream references unknown provisional step {s}"))
    };
    for Stamped { event, .. } in events {
        match event {
            Event::BeginTop { exec, name } => {
                let allocated = builder.begin_top_level(name);
                assert_eq!(allocated, exec, "begin events out of execution-id order");
            }
            Event::Invoke {
                step,
                parent,
                child,
                target,
                method,
                args,
            } => {
                let (msg, allocated) = builder.invoke(parent, target, method, args);
                assert_eq!(allocated, child, "invoke events out of execution-id order");
                final_id.insert(step, msg);
            }
            Event::Local {
                step,
                exec,
                op,
                ret,
            } => {
                let sid = builder.local(exec, op, ret);
                final_id.insert(step, sid);
            }
            Event::ProgramOrder { exec, a, b } => {
                builder.program_order_edge(exec, lookup(&final_id, a), lookup(&final_id, b));
            }
            Event::Complete { step, ret } => {
                builder.complete_invoke(lookup(&final_id, step), ret);
            }
            Event::Abort { exec } => {
                builder.abort(exec);
            }
            Event::SnapshotInvoke {
                step,
                parent,
                child,
                target,
                method,
                args,
            } => {
                let (msg, allocated) = builder.snapshot_invoke(parent, target, method, args);
                assert_eq!(allocated, child, "invoke events out of execution-id order");
                final_id.insert(step, msg);
            }
            Event::SnapshotLocal {
                step,
                exec,
                op,
                ret,
                anchor,
            } => {
                // The anchor's Local event is always sequenced before the
                // snapshot that observed it (install → publish → pin →
                // record happens-before), so the lookup cannot miss.
                let anchor = anchor.map(|a| lookup(&final_id, a));
                let sid = builder.snapshot_local(exec, op, ret, anchor);
                final_id.insert(step, sid);
            }
            Event::SnapshotComplete { step, ret } => {
                builder.snapshot_complete(lookup(&final_id, step), ret);
            }
        }
    }
    builder.build()
}

/// `true` if two histories are structurally identical: same executions (with
/// program order), same steps, same step intervals and same initial states.
/// This is the equivalence [`stitch`] guarantees against a direct
/// [`HistoryBuilder`] recording of the same linearisation.
pub fn same_structure(a: &History, b: &History) -> bool {
    a.execs() == b.execs()
        && a.steps() == b.steps()
        && a.initial_states() == b.initial_states()
        && (0..a.step_count()).all(|i| a.interval(StepId(i as u32)) == b.interval(StepId(i as u32)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{Counter, IntRegister};

    fn base_xy() -> (Arc<ObjectBase>, ObjectId, ObjectId) {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(Counter));
        (Arc::new(base), x, y)
    }

    /// Drives the same scripted lifecycle through a recorder. Execution ids
    /// follow creation order, as the lifecycle registry allocates them.
    fn scripted(rec: &mut dyn HistoryRecorder) {
        let (t0, c0, t1, c1) = (ExecId(0), ExecId(1), ExecId(2), ExecId(3));
        rec.record_begin_top(t0, "T0");
        let m0 = rec.record_invoke(t0, c0, ObjectId(0), "set", vec![]);
        let s0 = rec.record_local(c0, Operation::unary("Write", 5), Value::Unit);
        let s1 = rec.record_local(c0, Operation::nullary("Read"), Value::Int(5));
        rec.record_program_order(c0, s0, s1);
        rec.record_complete(m0, Value::Int(5));
        rec.record_begin_top(t1, "T1");
        let m1 = rec.record_invoke(t1, c1, ObjectId(1), "bump", vec![Value::Int(2)]);
        rec.record_local(c1, Operation::unary("Add", 2), Value::Unit);
        rec.record_complete(m1, Value::Unit);
        rec.record_abort(t1);
    }

    #[test]
    fn buffered_replay_matches_direct_recording() {
        let (base, _, _) = base_xy();
        let mut direct = HistoryBuilder::new(Arc::clone(&base));
        direct.set_auto_program_order(false);
        scripted(&mut direct);
        let want = direct.build();

        let clock = RecordClock::new();
        let mut buf = EventBuffer::new();
        scripted(&mut BufferedRecorder::new(&clock, &mut buf));
        let got = stitch(base, [buf]);
        assert!(same_structure(&want, &got));
    }

    /// The satellite guarantee: a random event stream recorded into many
    /// per-worker buffers (events scattered round-robin, buffers handed to
    /// `stitch` in arbitrary order) replays identically to the serial
    /// recorder, across seeds.
    #[test]
    fn scattered_buffers_replay_identically_across_seeds() {
        for seed in 0..20u64 {
            let (base, x, y) = base_xy();
            // A tiny deterministic LCG so the test needs no RNG dependency.
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = |n: u64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % n
            };

            let mut direct = HistoryBuilder::new(Arc::clone(&base));
            direct.set_auto_program_order(false);
            let clock = RecordClock::new();
            let workers = 1 + (seed as usize % 4);
            let mut bufs: Vec<EventBuffer> = (0..workers).map(|_| EventBuffer::new()).collect();

            // Random lifecycle: a handful of transactions, each with one
            // nested execution issuing 1–3 local steps, randomly aborted.
            let mut next_exec = 0u32;
            for t in 0..4 + next(4) {
                let top = ExecId(next_exec);
                next_exec += 1;
                let child = ExecId(next_exec);
                next_exec += 1;
                let object = if next(2) == 0 { x } else { y };
                let buf = &mut bufs[(t as usize) % workers];
                let mut rec = BufferedRecorder::new(&clock, buf);

                direct.record_begin_top(top, &format!("T{t}"));
                rec.record_begin_top(top, &format!("T{t}"));
                let dm = direct.record_invoke(top, child, object, "m", vec![]);
                let bm = rec.record_invoke(top, child, object, "m", vec![]);
                let mut prev: Option<(StepId, StepId)> = None;
                for i in 0..1 + next(3) {
                    let op = Operation::unary("Write", (i + t) as i64);
                    let ds = direct.record_local(child, op.clone(), Value::Unit);
                    let bs = rec.record_local(child, op, Value::Unit);
                    if let Some((dp, bp)) = prev {
                        direct.record_program_order(child, dp, ds);
                        rec.record_program_order(child, bp, bs);
                    }
                    prev = Some((ds, bs));
                }
                if next(3) == 0 {
                    direct.record_abort(child);
                    rec.record_abort(child);
                    direct.record_abort(top);
                    rec.record_abort(top);
                } else {
                    direct.record_complete(dm, Value::Int(t as i64));
                    rec.record_complete(bm, Value::Int(t as i64));
                }
            }
            direct.set_auto_program_order(false);
            let want = {
                // Rebuild through a fresh builder path: `direct` recorded
                // with final ids already, just build it.
                direct.build()
            };
            // Hand the buffers over in reversed order: stitch must not care.
            bufs.reverse();
            let got = stitch(base, bufs);
            assert!(
                same_structure(&want, &got),
                "stitched history diverged from serial recording (seed {seed})"
            );
        }
    }

    #[test]
    fn same_structure_detects_differences() {
        let (base, x, _) = base_xy();
        let mut a = HistoryBuilder::new(Arc::clone(&base));
        let t = a.begin_top_level("T");
        let (_, e) = a.invoke(t, x, "m", []);
        a.local(e, Operation::unary("Write", 1), Value::Unit);
        let a = a.build();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        b.local(e, Operation::unary("Write", 2), Value::Unit);
        let b = b.build();
        assert!(same_structure(&a, &a.clone()));
        assert!(!same_structure(&a, &b));
    }
}
