//! Per-object serialisation graphs and the intra-/inter-object separation
//! theorem (Definition 10 and Theorem 5, Section 5.3).
//!
//! For each object `o`, two graphs over the method executions *of `o`* are
//! defined:
//!
//! * `SG_local(h, o)` — edges implied by conflicts between the executions'
//!   own local steps (the object's intra-object serialisation order);
//! * `SG_mesg(h, o)` — edges implied by conflicts between their *messages*,
//!   manifested as `SG_local` edges between proper descendents at other
//!   objects (the inter-object constraints the object must respect).
//!
//! Additionally, for each method execution `e`, the relation `→_e` orders the
//! messages of `e` whenever the program order or a conflict between their
//! descendents does.
//!
//! **Theorem 5**: if `SG_local(h,o) ∪ SG_mesg(h,o)` is acyclic for every
//! object `o` and `→_e` is acyclic for every execution `e`, then `h` is
//! serialisable. Keeping `SG_local` acyclic is the job of *intra-object*
//! synchronisation; keeping `SG_mesg` and `→_e` acyclic is the job of
//! *inter-object* synchronisation. The optimistic certifier in `obase-occ`
//! enforces exactly these conditions at commit time.

use crate::graph::DiGraph;
use crate::history::History;
use crate::ids::{ExecId, ObjectId, StepId};
use std::collections::BTreeMap;

/// Builds `SG_local(h, o)`: nodes are the method executions of object `o`,
/// with an edge `e → e'` whenever `e` and `e'` are incomparable and some step
/// of `e` precedes and conflicts with some step of `e'`.
pub fn sg_local(h: &History, o: ObjectId) -> DiGraph<ExecId> {
    let mut g = DiGraph::new();
    let execs = h.execs_of_object(o);
    for &e in &execs {
        g.add_node(e);
    }
    for &e in &execs {
        for &e2 in &execs {
            if e == e2 || !h.incomparable(e, e2) {
                continue;
            }
            let steps_e: Vec<StepId> = h
                .exec(e)
                .steps
                .iter()
                .copied()
                .filter(|&s| h.step(s).is_local())
                .collect();
            let steps_e2: Vec<StepId> = h
                .exec(e2)
                .steps
                .iter()
                .copied()
                .filter(|&s| h.step(s).is_local())
                .collect();
            'outer: for &u in &steps_e {
                for &v in &steps_e2 {
                    if h.precedes(u, v) && h.steps_conflict(u, v) {
                        g.add_edge(e, e2);
                        break 'outer;
                    }
                }
            }
        }
    }
    g
}

/// Builds `SG_mesg(h, o)`: same nodes as `SG_local(h, o)`, with an edge
/// `e → e'` whenever `e` and `e'` are incomparable and some proper
/// descendents `f`, `f'` of `e`, `e'` are connected by an edge of
/// `SG_local(h, o')` for some object `o'`.
pub fn sg_mesg(h: &History, o: ObjectId) -> DiGraph<ExecId> {
    sg_mesg_from_locals(h, o, &all_sg_local(h))
}

/// Builds every object's `SG_local` in one pass (the environment is included
/// because its method executions — the top-level transactions — are nodes of
/// Definition 10 too, even though it has no local steps).
pub fn all_sg_local(h: &History) -> BTreeMap<ObjectId, DiGraph<ExecId>> {
    let mut objects = h.objects_touched();
    objects.push(ObjectId::ENVIRONMENT);
    for e in h.execs() {
        if !objects.contains(&e.object) {
            objects.push(e.object);
        }
    }
    objects.sort();
    objects.dedup();
    objects.into_iter().map(|o| (o, sg_local(h, o))).collect()
}

fn sg_mesg_from_locals(
    h: &History,
    o: ObjectId,
    locals: &BTreeMap<ObjectId, DiGraph<ExecId>>,
) -> DiGraph<ExecId> {
    let mut g = DiGraph::new();
    let execs = h.execs_of_object(o);
    for &e in &execs {
        g.add_node(e);
    }
    for (_, lg) in locals.iter() {
        for (f, f2) in lg.edges() {
            // Lift the edge to every pair of *proper* ancestors that are
            // executions of `o` and incomparable.
            for &e in h.ancestors_of(f).iter().skip(1) {
                if h.exec(e).object != o {
                    continue;
                }
                for &e2 in h.ancestors_of(f2).iter().skip(1) {
                    if h.exec(e2).object != o {
                        continue;
                    }
                    if h.incomparable(e, e2) {
                        g.add_edge(e, e2);
                    }
                }
            }
        }
    }
    g
}

/// The relation `→_e` between the message steps of a single method execution
/// `e`: `u →_e u'` iff `u ⊲ u'` or there are conflicting descendent steps
/// `t`, `t'` of `u`, `u'` with `t < t'`.
pub fn intra_method_message_order(h: &History, e: ExecId) -> DiGraph<StepId> {
    let exec = h.exec(e);
    let messages: Vec<StepId> = exec
        .steps
        .iter()
        .copied()
        .filter(|&s| h.step(s).is_message())
        .collect();
    let mut g = DiGraph::new();
    for &m in &messages {
        g.add_node(m);
    }
    for &u in &messages {
        for &u2 in &messages {
            if u == u2 {
                continue;
            }
            if exec.program_precedes(u, u2) {
                g.add_edge(u, u2);
                continue;
            }
            let (Some(c1), Some(c2)) = (h.step(u).message_child(), h.step(u2).message_child())
            else {
                continue;
            };
            let desc1 = h.subtree_local_steps(c1);
            let desc2 = h.subtree_local_steps(c2);
            'outer: for &t in &desc1 {
                for &t2 in &desc2 {
                    if h.precedes(t, t2) && h.steps_conflict(t, t2) {
                        g.add_edge(u, u2);
                        break 'outer;
                    }
                }
            }
        }
    }
    g
}

/// The result of evaluating the Theorem 5 condition on a history.
#[derive(Clone, Debug, Default)]
pub struct Theorem5Report {
    /// Objects whose `SG_local ∪ SG_mesg` has a cycle, with a witness cycle.
    pub cyclic_objects: Vec<(ObjectId, Vec<ExecId>)>,
    /// Executions whose `→_e` has a cycle, with a witness cycle of message
    /// steps.
    pub cyclic_executions: Vec<(ExecId, Vec<StepId>)>,
}

impl Theorem5Report {
    /// Returns `true` if both parts of the Theorem 5 condition hold, in which
    /// case the history is serialisable.
    pub fn condition_holds(&self) -> bool {
        self.cyclic_objects.is_empty() && self.cyclic_executions.is_empty()
    }
}

/// Evaluates the Theorem 5 condition: part (a) — for every object,
/// `SG_local ∪ SG_mesg` is acyclic; part (b) — for every execution, `→_e` is
/// acyclic.
pub fn theorem5_report(h: &History) -> Theorem5Report {
    let locals = all_sg_local(h);
    let mut report = Theorem5Report::default();
    for (&o, local) in &locals {
        let mesg = sg_mesg_from_locals(h, o, &locals);
        let combined = local.union(&mesg);
        if let Some(cycle) = combined.find_cycle() {
            report.cyclic_objects.push((o, cycle));
        }
    }
    for e in h.execs() {
        let g = intra_method_message_order(h, e.id);
        if let Some(cycle) = g.find_cycle() {
            report.cyclic_executions.push((e.id, cycle));
        }
    }
    report
}

/// Returns `true` if the Theorem 5 sufficient condition holds for `h`.
pub fn theorem5_condition_holds(h: &History) -> bool {
    theorem5_report(h).condition_holds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::object::ObjectBase;
    use crate::op::Operation;
    use crate::testutil::IntRegister;
    use crate::value::Value;
    use std::sync::Arc;

    fn base_xy() -> (Arc<ObjectBase>, ObjectId, ObjectId) {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(IntRegister));
        (Arc::new(base), x, y)
    }

    /// The running example of Section 2: x orders T1 before T2, y the
    /// reverse. Each object's own SG_local is acyclic (a single edge), but
    /// the environment's SG_mesg — which collects both orders at the parent
    /// level — has a 2-cycle, so the Theorem 5 condition correctly fails.
    #[test]
    fn incompatible_orders_fail_theorem5_at_the_environment() {
        let (base, x, y) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let t2 = b.begin_top_level("T2");
        let (m1, e1) = b.invoke(t1, x, "w", []);
        b.local_applied(e1, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        let (m2, e2) = b.invoke(t2, x, "w", []);
        b.local_applied(e2, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m2, Value::Unit);
        let (m3, e3) = b.invoke(t2, y, "w", []);
        b.local_applied(e3, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m3, Value::Unit);
        let (m4, e4) = b.invoke(t1, y, "w", []);
        b.local_applied(e4, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m4, Value::Unit);
        let h = b.build();

        let gx = sg_local(&h, x);
        let gy = sg_local(&h, y);
        assert!(gx.is_acyclic());
        assert!(gy.is_acyclic());
        assert!(gx.has_edge(e1, e2));
        assert!(gy.has_edge(e3, e4));

        let env_mesg = sg_mesg(&h, ObjectId::ENVIRONMENT);
        assert!(env_mesg.has_edge(t1, t2));
        assert!(env_mesg.has_edge(t2, t1));
        assert!(!env_mesg.is_acyclic());

        let report = theorem5_report(&h);
        assert!(!report.condition_holds());
        assert!(report
            .cyclic_objects
            .iter()
            .any(|(o, _)| o.is_environment()));
        assert!(!theorem5_condition_holds(&h));
    }

    /// A compatible interleaving satisfies the Theorem 5 condition.
    #[test]
    fn compatible_orders_satisfy_theorem5() {
        let (base, x, y) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let t2 = b.begin_top_level("T2");
        for (t, v) in [(t1, 1), (t2, 2)] {
            let (mx, ex) = b.invoke(t, x, "w", []);
            b.local_applied(ex, Operation::unary("Write", v)).unwrap();
            b.complete_invoke(mx, Value::Unit);
        }
        for (t, v) in [(t1, 1), (t2, 2)] {
            let (my, ey) = b.invoke(t, y, "w", []);
            b.local_applied(ey, Operation::unary("Write", v)).unwrap();
            b.complete_invoke(my, Value::Unit);
        }
        let h = b.build();
        assert!(theorem5_condition_holds(&h));
        // And indeed the global SG agrees (Theorem 5 is consistent with
        // Theorem 2 on this example).
        assert!(crate::sg::certifies_serialisable(&h));
    }

    /// `→_e` orders two parallel messages whose descendents conflict; if the
    /// conflicts point both ways, `→_e` is cyclic and Theorem 5(b) fails.
    #[test]
    fn intra_method_order_detects_conflicting_parallel_messages() {
        let (base, x, y) = base_xy();
        let mut b = HistoryBuilder::new(base);
        b.set_auto_program_order(false);
        let t = b.begin_top_level("T");
        // Two parallel messages from T to x-wrapper methods; each child
        // writes both x and y, in opposite orders.
        let (ma, ea) = b.invoke(t, x, "a", []);
        let (mb, eb) = b.invoke(t, x, "b", []);
        // ea writes x first, then y; eb writes y first, then x — but
        // interleaved so conflicts point in both directions between the two
        // children.
        b.local_applied(ea, Operation::unary("Write", 1)).unwrap();
        // eb's nested call to y:
        let (mby, eby) = b.invoke(eb, y, "wy", []);
        b.local_applied(eby, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(mby, Value::Unit);
        // ea's nested call to y (after eb's):
        let (may, eay) = b.invoke(ea, y, "wy", []);
        b.local_applied(eay, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(may, Value::Unit);
        // eb's own write of x (after ea's):
        b.local_applied(eb, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(ma, Value::Unit);
        b.complete_invoke(mb, Value::Unit);
        let h = b.build();

        let g = intra_method_message_order(&h, t);
        assert!(g.has_edge(ma, mb)); // x conflicts: ea before eb
        assert!(g.has_edge(mb, ma)); // y conflicts: eb's subtree before ea's
        assert!(!g.is_acyclic());
        let report = theorem5_report(&h);
        assert!(report.cyclic_executions.iter().any(|(e, _)| *e == t));
    }

    #[test]
    fn all_sg_local_includes_environment() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, x, "w", []);
        b.local_applied(e, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m, Value::Unit);
        let h = b.build();
        let locals = all_sg_local(&h);
        assert!(locals.contains_key(&ObjectId::ENVIRONMENT));
        assert!(locals.contains_key(&x));
    }
}
