//! History equivalence (Definition 7) and serial/serialisable histories
//! (Definition 8).
//!
//! Two histories are *equivalent* iff they have the same executions, the same
//! calling pattern, the same initial states, and every object reaches the
//! same final state under both. A history is *serial* iff for any two
//! incomparable executions all steps of one's descendents precede all steps
//! of the other's. A history is *serialisable* iff it is equivalent to some
//! serial history.
//!
//! Besides the definitional checks, this module contains a bounded
//! brute-force serialisability oracle used to validate the serialisation
//! graph test (Theorem 2) on small histories.

use crate::history::{History, Interval};
use crate::ids::{ExecId, StepId};
use crate::replay;
use crate::step::StepKind;
use std::collections::BTreeMap;

/// Returns `true` if the two histories have the same `E`, `B` and `S`
/// components (their steps and executions are structurally identical; only
/// the temporal order may differ).
pub fn same_structure(a: &History, b: &History) -> bool {
    if a.exec_count() != b.exec_count() || a.step_count() != b.step_count() {
        return false;
    }
    if a.initial_states() != b.initial_states() {
        return false;
    }
    for (ea, eb) in a.execs().iter().zip(b.execs()) {
        if ea.id != eb.id
            || ea.object != eb.object
            || ea.method != eb.method
            || ea.parent != eb.parent
            || ea.parent_step != eb.parent_step
            || ea.steps != eb.steps
            || ea.aborted != eb.aborted
        {
            return false;
        }
    }
    for (sa, sb) in a.steps().iter().zip(b.steps()) {
        if sa != sb {
            return false;
        }
    }
    true
}

/// Definition 7: the histories have the same `E`, `B`, `S` and every object
/// has the same final state in both. Returns `false` if either history's
/// replay fails (an illegal history is equivalent to nothing).
pub fn equivalent(a: &History, b: &History) -> bool {
    if !same_structure(a, b) {
        return false;
    }
    match (replay::final_states(a), replay::final_states(b)) {
        (Ok(fa), Ok(fb)) => fa == fb,
        _ => false,
    }
}

/// The time span covered by the steps of an execution's subtree, or `None`
/// if the subtree has no steps.
fn subtree_span(h: &History, e: ExecId) -> Option<Interval> {
    let mut span: Option<Interval> = None;
    for sub in h.subtree_execs(e) {
        for &s in &h.exec(sub).steps {
            let i = h.interval(s);
            span = Some(match span {
                None => i,
                Some(cur) => Interval::new(cur.start.min(i.start), cur.end.max(i.end)),
            });
        }
    }
    span
}

/// Definition 8: a history is serial iff for any two incomparable executions,
/// all steps of one's descendents precede all steps of the other's.
pub fn is_serial(h: &History) -> bool {
    let n = h.exec_count();
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (ExecId(i as u32), ExecId(j as u32));
            if !h.incomparable(a, b) {
                continue;
            }
            let (Some(sa), Some(sb)) = (subtree_span(h, a), subtree_span(h, b)) else {
                continue;
            };
            if !sa.before(&sb) && !sb.before(&sa) {
                return false;
            }
        }
    }
    true
}

/// Lays out the history serially: executions are nested blocks, siblings are
/// ordered by `sibling_order`, and within an execution its own steps are
/// emitted in `step_order`. Returns the per-step intervals.
pub fn serial_layout(
    h: &History,
    sibling_order: &dyn Fn(&History, Option<ExecId>) -> Vec<ExecId>,
    step_order: &dyn Fn(&History, ExecId) -> Vec<StepId>,
) -> Vec<Interval> {
    let mut intervals = vec![Interval::instant(0); h.step_count()];
    let mut clock: u64 = 0;

    fn lay_exec(
        h: &History,
        e: ExecId,
        clock: &mut u64,
        intervals: &mut [Interval],
        step_order: &dyn Fn(&History, ExecId) -> Vec<StepId>,
    ) {
        for s in step_order(h, e) {
            match &h.step(s).kind {
                StepKind::Local(_) => {
                    intervals[s.index()] = Interval::instant(*clock);
                    *clock += 1;
                }
                StepKind::Message { child, .. } => {
                    let start = *clock;
                    *clock += 1;
                    lay_exec(h, *child, clock, intervals, step_order);
                    let end = *clock;
                    *clock += 1;
                    intervals[s.index()] = Interval::new(start, end);
                }
            }
        }
    }

    for top in sibling_order(h, None) {
        lay_exec(h, top, &mut clock, &mut intervals, step_order);
    }
    intervals
}

/// The default sibling order: children (or top-level executions when `parent`
/// is `None`) in id order.
pub fn sibling_order_by_id(h: &History, parent: Option<ExecId>) -> Vec<ExecId> {
    match parent {
        None => h.top_level_execs(),
        Some(p) => h.children_of(p).to_vec(),
    }
}

/// The default step order within an execution: the execution's recorded step
/// list (which respects the program order for builder-produced histories).
pub fn step_order_recorded(h: &History, e: ExecId) -> Vec<StepId> {
    h.exec(e).steps.clone()
}

/// Enumerates up to `cap` serial re-layouts of the history obtained by
/// permuting sibling executions at every level (the internal step order of
/// each execution is kept as recorded). For each candidate the steps are
/// re-timed into nested, disjoint blocks, which makes the candidate serial by
/// construction.
pub fn enumerate_serial_relayouts(h: &History, cap: usize) -> Vec<History> {
    // Collect the sibling groups: top level plus the children of every exec.
    let mut groups: Vec<Vec<ExecId>> = vec![h.top_level_execs()];
    for e in h.execs() {
        let kids = h.children_of(e.id);
        if kids.len() > 1 {
            groups.push(kids.to_vec());
        }
    }
    // Enumerate permutations of each group (bounded), then take the cartesian
    // product (bounded).
    fn permutations(items: &[ExecId], cap: usize) -> Vec<Vec<ExecId>> {
        let mut out = Vec::new();
        let mut items = items.to_vec();
        fn recurse(items: &mut Vec<ExecId>, k: usize, out: &mut Vec<Vec<ExecId>>, cap: usize) {
            if out.len() >= cap {
                return;
            }
            if k == items.len() {
                out.push(items.clone());
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                recurse(items, k + 1, out, cap);
                items.swap(k, i);
                if out.len() >= cap {
                    return;
                }
            }
        }
        recurse(&mut items, 0, &mut out, cap);
        out
    }

    let group_perms: Vec<Vec<Vec<ExecId>>> = groups.iter().map(|g| permutations(g, cap)).collect();

    let mut out = Vec::new();
    let mut choice = vec![0usize; group_perms.len()];
    'outer: loop {
        if out.len() >= cap {
            break;
        }
        // Build a sibling-order lookup from the current choice.
        let mut order_of: BTreeMap<Option<ExecId>, Vec<ExecId>> = BTreeMap::new();
        for (gi, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let perm = &group_perms[gi][choice[gi]];
            let parent = h.parent_of(group[0]);
            order_of.insert(parent, perm.clone());
        }
        let sibling_order = move |h: &History, parent: Option<ExecId>| -> Vec<ExecId> {
            order_of
                .get(&parent)
                .cloned()
                .unwrap_or_else(|| sibling_order_by_id(h, parent))
        };
        let intervals = serial_layout(h, &sibling_order, &step_order_recorded);
        out.push(h.with_intervals(intervals));

        // Advance the mixed-radix counter over permutation choices.
        for gi in 0..choice.len() {
            choice[gi] += 1;
            if choice[gi] < group_perms[gi].len() {
                continue 'outer;
            }
            choice[gi] = 0;
        }
        break;
    }
    out
}

/// Bounded brute-force serialisability oracle: searches the serial re-layouts
/// produced by [`enumerate_serial_relayouts`] for one that is legal and
/// equivalent to `h`. Returns the witness if found.
///
/// The oracle is *sound* (a returned witness really is an equivalent, legal,
/// serial history) but only complete up to the enumeration bound and the
/// block-nested layout shape; it is intended for small histories in tests and
/// in experiment E5.
pub fn find_equivalent_serial(h: &History, cap: usize) -> Option<History> {
    let expected = replay::final_states(h).ok()?;
    let mut candidates = enumerate_serial_relayouts(h, cap).into_iter();
    candidates.find(|candidate| {
        crate::legality::is_legal(candidate)
            && is_serial(candidate)
            && replay::final_states(candidate).is_ok_and(|f| f == expected)
    })
}

/// Bounded brute-force serialisability test (Definition 8).
pub fn is_serialisable_bruteforce(h: &History, cap: usize) -> bool {
    find_equivalent_serial(h, cap).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::object::ObjectBase;
    use crate::op::Operation;
    use crate::testutil::IntRegister;
    use crate::value::Value;
    use std::sync::Arc;

    /// Two transactions each writing x then y, fully interleaved so that x
    /// serialises T1 before T2 but y serialises T2 before T1: the classic
    /// non-serialisable execution from Section 2 of the paper.
    fn incompatible_orders_history() -> History {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t1 = b.begin_top_level("T1");
        let t2 = b.begin_top_level("T2");
        let (m1x, e1x) = b.invoke(t1, x, "w", []);
        b.local_applied(e1x, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m1x, Value::Unit);
        let (m2x, e2x) = b.invoke(t2, x, "w", []);
        b.local_applied(e2x, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m2x, Value::Unit);
        let (m2y, e2y) = b.invoke(t2, y, "w", []);
        b.local_applied(e2y, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m2y, Value::Unit);
        let (m1y, e1y) = b.invoke(t1, y, "w", []);
        b.local_applied(e1y, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m1y, Value::Unit);
        b.build()
    }

    /// Two transactions touching x then y strictly one after the other.
    fn serial_history() -> History {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        for (name, v) in [("T1", 1), ("T2", 2)] {
            let t = b.begin_top_level(name);
            let (mx, ex) = b.invoke(t, x, "w", []);
            b.local_applied(ex, Operation::unary("Write", v)).unwrap();
            b.complete_invoke(mx, Value::Unit);
            let (my, ey) = b.invoke(t, y, "w", []);
            b.local_applied(ey, Operation::unary("Write", v)).unwrap();
            b.complete_invoke(my, Value::Unit);
        }
        b.build()
    }

    #[test]
    fn serial_history_is_serial_and_self_equivalent() {
        let h = serial_history();
        assert!(is_serial(&h));
        assert!(equivalent(&h, &h));
        assert!(same_structure(&h, &h));
        assert!(is_serialisable_bruteforce(&h, 64));
    }

    #[test]
    fn interleaved_history_is_not_serial() {
        let h = incompatible_orders_history();
        assert!(!is_serial(&h));
    }

    #[test]
    fn incompatible_orders_are_not_serialisable() {
        let h = incompatible_orders_history();
        assert!(crate::legality::is_legal(&h));
        assert!(!is_serialisable_bruteforce(&h, 256));
    }

    #[test]
    fn serialisable_interleaving_found_by_oracle() {
        // T1 writes x, T2 writes y, interleaved: trivially serialisable.
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t1 = b.begin_top_level("T1");
        let t2 = b.begin_top_level("T2");
        let (m1, e1) = b.invoke(t1, x, "w", []);
        let (m2, e2) = b.invoke(t2, y, "w", []);
        b.local_applied(e1, Operation::unary("Write", 1)).unwrap();
        b.local_applied(e2, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        b.complete_invoke(m2, Value::Unit);
        let h = b.build();
        assert!(!is_serial(&h));
        let witness = find_equivalent_serial(&h, 64).expect("serialisable");
        assert!(is_serial(&witness));
        assert!(crate::legality::is_legal(&witness));
    }

    #[test]
    fn structure_mismatch_not_equivalent() {
        let a = serial_history();
        let b = incompatible_orders_history();
        assert!(!same_structure(&a, &b));
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn relayout_candidates_are_serial() {
        let h = incompatible_orders_history();
        for cand in enumerate_serial_relayouts(&h, 8) {
            assert!(is_serial(&cand));
            assert!(same_structure(&h, &cand));
        }
    }
}
