//! Backend-agnostic transaction-lifecycle building blocks.
//!
//! The paper's guarantees (legality, Theorem 2, Theorem 5) must hold for
//! every history an execution backend produces, whether the backend is the
//! deterministic interleaving simulator (`obase-exec`) or the multi-threaded
//! wall-clock engine (`obase-par`). Both backends therefore run the *same*
//! lifecycle code: a shared registry of method executions ([`ExecTable`]),
//! one abort/cascade resolution loop ([`resolve_abort`]) and one deadlock
//! victim rule ([`ExecTable::deadlock_victim`]). What genuinely differs
//! between backends — locking discipline, store access, how a running victim
//! is torn down — is captured by the small [`ExecutionDriver`] trait.
//!
//! The stateful half of the kernel (history recording, scheduler admission,
//! retry accounting, metrics) lives in `obase_exec::kernel`, which drives
//! the pieces defined here; this module holds the parts that only need the
//! core model.

use crate::graph::DiGraph;
use crate::ids::{ExecId, ObjectId};
use crate::object::{ObjectBase, TypeHandle};
use crate::sched::{AbortReason, TxnView};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The lifecycle state of one method execution, as tracked by every backend.
///
/// Backend-specific bookkeeping (the simulator's argument bindings and
/// resume-thread indices, the parallel engine's activity stacks) lives in
/// per-backend side tables indexed by the same [`ExecId`].
#[derive(Clone, Debug)]
pub struct ExecRecord {
    /// The invoking execution (`None` for top-level transactions).
    pub parent: Option<ExecId>,
    /// The object whose method this execution runs
    /// ([`ObjectId::ENVIRONMENT`] for top-level transactions).
    pub object: ObjectId,
    /// `true` while the execution is neither committed nor aborted.
    pub live: bool,
    /// `true` once the execution has been aborted.
    pub aborted: bool,
    /// `true` once the execution has committed (tracked for top-level
    /// transactions, whose commits may later be cascade-reverted by
    /// non-strict schedulers).
    pub committed: bool,
    /// For top-level transactions: the workload spec index and the attempt
    /// number (0 for the initial submission), used for retry accounting.
    pub spec: Option<(usize, u32)>,
    /// Child executions, in invocation order.
    pub children: Vec<ExecId>,
}

/// The registry of method executions of one run: every backend's control
/// plane keeps exactly one, indexed by [`ExecId`] in creation order (which
/// matches the history builder's numbering).
#[derive(Debug)]
pub struct ExecTable {
    records: Vec<ExecRecord>,
    base: Arc<ObjectBase>,
}

impl ExecTable {
    /// Creates an empty table over the given object base.
    pub fn new(base: Arc<ObjectBase>) -> Self {
        ExecTable {
            records: Vec::new(),
            base,
        }
    }

    /// The object base the executions run against.
    pub fn base(&self) -> &Arc<ObjectBase> {
        &self.base
    }

    /// Number of registered executions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no execution has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Registers the next execution; its id must be allocated by the history
    /// builder so the two numberings stay aligned (callers debug-assert it).
    pub fn push(&mut self, record: ExecRecord) {
        self.records.push(record);
    }

    /// The record of an execution.
    pub fn record(&self, e: ExecId) -> &ExecRecord {
        &self.records[e.index()]
    }

    /// Mutable access to the record of an execution.
    pub fn record_mut(&mut self, e: ExecId) -> &mut ExecRecord {
        &mut self.records[e.index()]
    }

    /// The top-level ancestor of an execution.
    pub fn top_of(&self, mut e: ExecId) -> ExecId {
        while let Some(p) = self.records[e.index()].parent {
            e = p;
        }
        e
    }

    /// The execution subtree rooted at `root` (root first, then descendants).
    pub fn subtree_of(&self, root: ExecId) -> Vec<ExecId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(e) = stack.pop() {
            out.push(e);
            stack.extend(self.records[e.index()].children.iter().copied());
        }
        out
    }

    /// A [`TxnView`] over the current table, for scheduler hooks.
    pub fn view(&self) -> TableView<'_> {
        TableView { table: self }
    }

    /// The shared deadlock victim rule: given a waits-for graph over
    /// executions, picks the youngest (highest-id) execution on a cycle and
    /// returns its top-level transaction — unless that transaction is
    /// already aborted or committed, in which case the apparent cycle is
    /// stale and `None` is returned.
    pub fn deadlock_victim(&self, waits_for: &DiGraph<ExecId>) -> Option<ExecId> {
        let cycle = waits_for.find_cycle()?;
        let youngest = cycle.into_iter().max().expect("cycles are non-empty");
        let top = self.top_of(youngest);
        let record = self.record(top);
        if record.aborted || record.committed {
            return None;
        }
        Some(top)
    }
}

/// [`TxnView`] implementation over an [`ExecTable`] — the one view type both
/// backends hand to scheduler hooks.
pub struct TableView<'a> {
    table: &'a ExecTable,
}

impl TxnView for TableView<'_> {
    fn parent(&self, e: ExecId) -> Option<ExecId> {
        self.table.record(e).parent
    }
    fn object_of(&self, e: ExecId) -> ObjectId {
        self.table.record(e).object
    }
    fn type_of(&self, o: ObjectId) -> TypeHandle {
        self.table.base.type_of(o)
    }
    fn is_live(&self, e: ExecId) -> bool {
        self.table.record(e).live
    }
}

/// A top-level transaction that must be cascade-aborted because one of its
/// executions performed a dirty read of state an abort physically undid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CascadeVictim {
    /// The top-level transaction to abort.
    pub top: ExecId,
    /// `true` if the victim had already committed (only possible under
    /// non-strict schedulers). A committed victim has no thread of control
    /// left, so the abort must be resolved inline by whoever discovered it;
    /// a still-running victim can instead be doomed for its own thread of
    /// control to unwind.
    pub committed: bool,
}

/// What genuinely differs between execution backends in the abort path, as
/// consumed by the shared resolution loop [`resolve_abort`].
///
/// Each hook is a thin wrapper: implementations delegate the lifecycle logic
/// to `obase_exec::kernel::LifecycleKernel` (marking, scheduler release,
/// retry accounting, cascade collection) and the store's `undo`, adding only
/// their own locking discipline and thread-of-control teardown. The contract
/// that makes strict schedulers cascade-free holds for every implementation:
/// scheduler resources are released in [`release_aborted`], i.e. only
/// *after* [`undo_steps`] has removed the dirty state.
///
/// [`release_aborted`]: ExecutionDriver::release_aborted
/// [`undo_steps`]: ExecutionDriver::undo_steps
pub trait ExecutionDriver {
    /// Phase 1 (control plane): mark the victim's execution subtree aborted
    /// so none of its steps install from here on, record the abort steps and
    /// metrics, and tear down the backend's threads of control for it.
    /// Returns the subtree, or `None` if the victim was already aborted (the
    /// shared loop then skips it — aborts are idempotent).
    fn mark_aborted(
        &mut self,
        top: ExecId,
        reason: &AbortReason,
        cascade: bool,
    ) -> Option<Vec<ExecId>>;

    /// Phase 2 (data plane): physically undo every step installed by the
    /// aborted executions, while the scheduler still holds their resources.
    /// Returns the number of removed steps and the executions whose
    /// surviving steps no longer replay — dirty readers.
    fn undo_steps(&mut self, aborted: &BTreeSet<ExecId>) -> (usize, BTreeSet<ExecId>);

    /// Phase 3 (control plane): release the subtree's scheduler resources
    /// (children before parents), account the retry, and map the dirty
    /// readers to cascade victims. Returns the victims this driver wants
    /// resolved *inline* by the shared loop; victims still running on other
    /// threads of control may instead be doomed internally (the parallel
    /// backend) and are then not returned.
    fn release_aborted(
        &mut self,
        top: ExecId,
        subtree: &[ExecId],
        removed_steps: usize,
        invalidated: BTreeSet<ExecId>,
    ) -> Vec<ExecId>;
}

/// The shared abort/cascade resolution loop: aborts `top` for `reason` and
/// keeps resolving cascade victims until none remain. This is the only copy
/// of the worklist algorithm; both backends call it through their
/// [`ExecutionDriver`].
pub fn resolve_abort<D: ExecutionDriver>(
    driver: &mut D,
    top: ExecId,
    reason: AbortReason,
    cascade: bool,
) {
    let mut worklist: Vec<(ExecId, AbortReason, bool)> = vec![(top, reason, cascade)];
    while let Some((victim, reason, cascade)) = worklist.pop() {
        let Some(subtree) = driver.mark_aborted(victim, &reason, cascade) else {
            continue; // already aborted (idempotent)
        };
        let subtree_set: BTreeSet<ExecId> = subtree.iter().copied().collect();
        let (removed, invalidated) = driver.undo_steps(&subtree_set);
        for next in driver.release_aborted(victim, &subtree, removed, invalidated) {
            worklist.push((next, AbortReason::CascadingDirtyRead, true));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::IntRegister;

    fn table_with_forest() -> ExecTable {
        // 0 (top) ── 1 ── 2
        //        └── 3
        // 4 (top)
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut t = ExecTable::new(Arc::new(base));
        let rec = |parent, object| ExecRecord {
            parent,
            object,
            live: true,
            aborted: false,
            committed: false,
            spec: None,
            children: Vec::new(),
        };
        t.push(rec(None, ObjectId::ENVIRONMENT));
        t.push(rec(Some(ExecId(0)), x));
        t.push(rec(Some(ExecId(1)), x));
        t.push(rec(Some(ExecId(0)), x));
        t.push(rec(None, ObjectId::ENVIRONMENT));
        t.record_mut(ExecId(0)).children = vec![ExecId(1), ExecId(3)];
        t.record_mut(ExecId(1)).children = vec![ExecId(2)];
        t
    }

    #[test]
    fn genealogy_and_subtrees() {
        let t = table_with_forest();
        assert_eq!(t.top_of(ExecId(2)), ExecId(0));
        assert_eq!(t.top_of(ExecId(4)), ExecId(4));
        let mut sub = t.subtree_of(ExecId(0));
        sub.sort();
        assert_eq!(sub, vec![ExecId(0), ExecId(1), ExecId(2), ExecId(3)]);
        assert_eq!(t.subtree_of(ExecId(4)), vec![ExecId(4)]);
    }

    #[test]
    fn view_exposes_the_records() {
        let t = table_with_forest();
        let v = t.view();
        assert_eq!(v.parent(ExecId(1)), Some(ExecId(0)));
        assert!(v.is_live(ExecId(2)));
        assert_eq!(v.top_level_of(ExecId(2)), ExecId(0));
        assert!(v.object_of(ExecId(0)).is_environment());
    }

    #[test]
    fn deadlock_victim_is_youngest_cycle_members_top() {
        let t = table_with_forest();
        let mut g = DiGraph::new();
        g.add_edge(ExecId(2), ExecId(4));
        g.add_edge(ExecId(4), ExecId(2));
        // Youngest on the cycle is 4, itself a top-level transaction.
        assert_eq!(t.deadlock_victim(&g), Some(ExecId(4)));
    }

    #[test]
    fn deadlock_victim_skips_settled_transactions() {
        let mut t = table_with_forest();
        let mut g = DiGraph::new();
        g.add_edge(ExecId(2), ExecId(4));
        g.add_edge(ExecId(4), ExecId(2));
        t.record_mut(ExecId(4)).committed = true;
        assert_eq!(t.deadlock_victim(&g), None);
        t.record_mut(ExecId(4)).committed = false;
        t.record_mut(ExecId(4)).aborted = true;
        assert_eq!(t.deadlock_victim(&g), None);
        // No cycle at all.
        let mut acyclic = DiGraph::new();
        acyclic.add_edge(ExecId(0), ExecId(4));
        assert_eq!(t.deadlock_victim(&acyclic), None);
    }

    #[test]
    fn resolve_abort_drains_cascades_and_skips_duplicates() {
        // A scripted driver: aborting A invalidates a reader whose top is B;
        // B's release produces no further victims. A second report of B must
        // be skipped by the idempotence check.
        struct Script {
            aborted: BTreeSet<ExecId>,
            marks: Vec<ExecId>,
            undone: Vec<BTreeSet<ExecId>>,
            released: Vec<ExecId>,
        }
        impl ExecutionDriver for Script {
            fn mark_aborted(
                &mut self,
                top: ExecId,
                _reason: &AbortReason,
                _cascade: bool,
            ) -> Option<Vec<ExecId>> {
                if !self.aborted.insert(top) {
                    return None;
                }
                self.marks.push(top);
                Some(vec![top])
            }
            fn undo_steps(&mut self, aborted: &BTreeSet<ExecId>) -> (usize, BTreeSet<ExecId>) {
                self.undone.push(aborted.clone());
                if aborted.contains(&ExecId(0)) {
                    // Two dirty readers, both inside top-level 7.
                    (2, [ExecId(8), ExecId(9)].into_iter().collect())
                } else {
                    (0, BTreeSet::new())
                }
            }
            fn release_aborted(
                &mut self,
                top: ExecId,
                _subtree: &[ExecId],
                _removed: usize,
                invalidated: BTreeSet<ExecId>,
            ) -> Vec<ExecId> {
                self.released.push(top);
                // Both readers map to top-level 7 (duplicates on purpose).
                invalidated.iter().map(|_| ExecId(7)).collect()
            }
        }
        let mut d = Script {
            aborted: BTreeSet::new(),
            marks: Vec::new(),
            undone: Vec::new(),
            released: Vec::new(),
        };
        resolve_abort(&mut d, ExecId(0), AbortReason::Deadlock, false);
        assert_eq!(d.marks, vec![ExecId(0), ExecId(7)]);
        assert_eq!(d.released, vec![ExecId(0), ExecId(7)]);
        // Undo ran once per *marked* victim, not per duplicate report.
        assert_eq!(d.undone.len(), 2);
    }
}
