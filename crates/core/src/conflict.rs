//! State-based commutativity and conflict checking (Definition 3).
//!
//! A semantic type declares its conflict relation
//! ([`SemanticType::ops_conflict`]/[`SemanticType::steps_conflict`]); this
//! module provides the *ground truth* against which those declarations are
//! validated. Step `t₁` commutes with `t₂` iff, for every state `s` on which
//! the sequence `t₁, t₂` is legal, the sequence `t₂, t₁` is also legal on `s`
//! and both sequences leave the object in the same final state.
//!
//! The ground truth quantifies over *all* states, which is not computable for
//! infinite state spaces; we approximate it by quantifying over the type's
//! [`sample_states`](SemanticType::sample_states) together with every state
//! reachable from them by applying sample operations up to a bounded depth.
//! A declared non-conflict that fails this check is certainly a bug; the
//! property tests of `obase-adt` use [`validate_conflict_spec`] to catch such
//! bugs.

use crate::object::SemanticType;
use crate::op::{LocalStep, Operation};
use crate::value::Value;
use std::collections::BTreeSet;

/// The outcome of checking commutativity of a pair of steps on one state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommuteOutcome {
    /// The sequence `t₁, t₂` is not legal on the state, so the state imposes
    /// no constraint (vacuously commutes).
    NotApplicable,
    /// Both orders are legal and produce the same final state.
    Commutes,
    /// The reversed order `t₂, t₁` is not legal on the state.
    ReversedNotLegal,
    /// Both orders are legal but produce different final states.
    DifferentFinalStates {
        /// Final state after `t₁, t₂`.
        forward: Value,
        /// Final state after `t₂, t₁`.
        reversed: Value,
    },
}

impl CommuteOutcome {
    /// Returns `true` if the outcome demonstrates a conflict.
    pub fn is_conflict(&self) -> bool {
        matches!(
            self,
            CommuteOutcome::ReversedNotLegal | CommuteOutcome::DifferentFinalStates { .. }
        )
    }
}

/// Checks whether the sequence of steps is legal on `state`: applying the
/// operations in order reproduces the recorded return values.
pub fn sequence_legal_on(ty: &dyn SemanticType, state: &Value, steps: &[LocalStep]) -> bool {
    let mut cur = state.clone();
    for step in steps {
        match ty.apply(&cur, &step.op) {
            Ok((next, ret)) => {
                if ret != step.ret {
                    return false;
                }
                cur = next;
            }
            Err(_) => return false,
        }
    }
    true
}

/// Applies a sequence of steps to a state, ignoring recorded return values.
/// Returns `None` if some operation cannot be applied.
pub fn apply_sequence(ty: &dyn SemanticType, state: &Value, steps: &[LocalStep]) -> Option<Value> {
    let mut cur = state.clone();
    for step in steps {
        let (next, _) = ty.apply(&cur, &step.op).ok()?;
        cur = next;
    }
    Some(cur)
}

/// Checks Definition 3 for one pair of steps on one state.
pub fn steps_commute_on_state(
    ty: &dyn SemanticType,
    state: &Value,
    t1: &LocalStep,
    t2: &LocalStep,
) -> CommuteOutcome {
    let forward = [t1.clone(), t2.clone()];
    if !sequence_legal_on(ty, state, &forward) {
        return CommuteOutcome::NotApplicable;
    }
    let reversed = [t2.clone(), t1.clone()];
    if !sequence_legal_on(ty, state, &reversed) {
        return CommuteOutcome::ReversedNotLegal;
    }
    let f = apply_sequence(ty, state, &forward).expect("forward legal implies applicable");
    let r = apply_sequence(ty, state, &reversed).expect("reversed legal implies applicable");
    if f == r {
        CommuteOutcome::Commutes
    } else {
        CommuteOutcome::DifferentFinalStates {
            forward: f,
            reversed: r,
        }
    }
}

/// Checks Definition 3 over a set of states: `t₁` commutes with `t₂` iff no
/// state in `states` demonstrates a conflict.
pub fn steps_commute_over(
    ty: &dyn SemanticType,
    states: &[Value],
    t1: &LocalStep,
    t2: &LocalStep,
) -> bool {
    states
        .iter()
        .all(|s| !steps_commute_on_state(ty, s, t1, t2).is_conflict())
}

/// Expands a set of seed states by applying every sample operation up to
/// `depth` times, collecting all reachable states. This enlarges the set of
/// states over which conflict specifications are validated.
pub fn reachable_states(ty: &dyn SemanticType, depth: usize) -> Vec<Value> {
    let mut states: BTreeSet<Value> = ty.sample_states().into_iter().collect();
    states.insert(ty.initial_state());
    let ops = ty.sample_operations();
    let mut frontier: Vec<Value> = states.iter().cloned().collect();
    for _ in 0..depth {
        let mut next = Vec::new();
        for s in &frontier {
            for op in &ops {
                if let Ok((s2, _)) = ty.apply(s, op) {
                    if states.insert(s2.clone()) {
                        next.push(s2);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    states.into_iter().collect()
}

/// The steps achievable by executing `op` on any of `states`.
pub fn achievable_steps(ty: &dyn SemanticType, states: &[Value], op: &Operation) -> Vec<LocalStep> {
    let mut out: BTreeSet<(Operation, Value)> = BTreeSet::new();
    for s in states {
        if let Ok((_, ret)) = ty.apply(s, op) {
            out.insert((op.clone(), ret));
        }
    }
    out.into_iter()
        .map(|(op, ret)| LocalStep::new(op, ret))
        .collect()
}

/// A violation found by [`validate_conflict_spec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecViolation {
    /// The first step of the offending pair.
    pub t1: LocalStep,
    /// The second step of the offending pair.
    pub t2: LocalStep,
    /// The state demonstrating the violation.
    pub state: Value,
    /// What went wrong.
    pub outcome: CommuteOutcome,
    /// Whether the violation is at the step level (`steps_conflict` said the
    /// pair does not conflict) or only at the operation level.
    pub step_level: bool,
}

/// Validates the declared conflict relations of a semantic type against the
/// state-based ground truth of Definition 3, over the type's sample
/// operations and the states reachable from its sample states within
/// `depth` steps.
///
/// Returns every *soundness* violation found: a pair of steps declared
/// non-conflicting that fails to commute on some explored state. (The
/// converse — declared conflicts that actually commute — is merely
/// conservative and is not reported as a violation.)
pub fn validate_conflict_spec(ty: &dyn SemanticType, depth: usize) -> Vec<SpecViolation> {
    let states = reachable_states(ty, depth);
    let ops = ty.sample_operations();
    let mut violations = Vec::new();
    for a in &ops {
        for b in &ops {
            let steps_a = achievable_steps(ty, &states, a);
            let steps_b = achievable_steps(ty, &states, b);
            for ta in &steps_a {
                for tb in &steps_b {
                    for s in &states {
                        let outcome = steps_commute_on_state(ty, s, ta, tb);
                        if !outcome.is_conflict() {
                            continue;
                        }
                        if !ty.steps_conflict(ta, tb) {
                            violations.push(SpecViolation {
                                t1: ta.clone(),
                                t2: tb.clone(),
                                state: s.clone(),
                                outcome: outcome.clone(),
                                step_level: true,
                            });
                        }
                        if !ty.ops_conflict(a, b) {
                            violations.push(SpecViolation {
                                t1: ta.clone(),
                                t2: tb.clone(),
                                state: s.clone(),
                                outcome: outcome.clone(),
                                step_level: false,
                            });
                        }
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{Counter, IntRegister};

    fn step(name: &str, args: &[i64], ret: impl Into<Value>) -> LocalStep {
        LocalStep::new(
            Operation::new(name, args.iter().map(|&v| Value::Int(v))),
            ret,
        )
    }

    #[test]
    fn register_writes_conflict() {
        let ty = IntRegister;
        let w1 = step("Write", &[1], ());
        let w2 = step("Write", &[2], ());
        let outcome = steps_commute_on_state(&ty, &Value::Int(0), &w1, &w2);
        assert!(outcome.is_conflict());
        match outcome {
            CommuteOutcome::DifferentFinalStates { forward, reversed } => {
                assert_eq!(forward, Value::Int(2));
                assert_eq!(reversed, Value::Int(1));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn register_reads_commute() {
        let ty = IntRegister;
        let r = step("Read", &[], 0);
        assert_eq!(
            steps_commute_on_state(&ty, &Value::Int(0), &r, &r),
            CommuteOutcome::Commutes
        );
    }

    #[test]
    fn read_write_reversal_illegal() {
        let ty = IntRegister;
        // Read returned 0, then Write(5): legal from state 0. Reversed, the
        // read would return 5, so the recorded return value no longer holds.
        let r = step("Read", &[], 0);
        let w = step("Write", &[5], ());
        assert_eq!(
            steps_commute_on_state(&ty, &Value::Int(0), &r, &w),
            CommuteOutcome::ReversedNotLegal
        );
    }

    #[test]
    fn inapplicable_pairs_vacuously_commute() {
        let ty = IntRegister;
        // A read that recorded return 7 is not legal on state 0.
        let r = step("Read", &[], 7);
        let w = step("Write", &[5], ());
        assert_eq!(
            steps_commute_on_state(&ty, &Value::Int(0), &r, &w),
            CommuteOutcome::NotApplicable
        );
    }

    #[test]
    fn counter_adds_commute_reads_dont() {
        let ty = Counter;
        let a1 = step("Add", &[2], ());
        let a2 = step("Add", &[3], ());
        assert!(steps_commute_over(&ty, &reachable_states(&ty, 2), &a1, &a2));
        let g = step("Get", &[], 0);
        assert!(!steps_commute_over(&ty, &reachable_states(&ty, 2), &a1, &g));
    }

    #[test]
    fn reachable_states_grow() {
        let ty = Counter;
        let states = reachable_states(&ty, 3);
        assert!(states.len() > ty.sample_states().len());
        assert!(states.contains(&Value::Int(0)));
    }

    #[test]
    fn achievable_steps_collect_return_values() {
        let ty = IntRegister;
        let states = vec![Value::Int(0), Value::Int(1)];
        let steps = achievable_steps(&ty, &states, &Operation::nullary("Read"));
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn register_and_counter_specs_are_sound() {
        assert!(validate_conflict_spec(&IntRegister, 2).is_empty());
        assert!(validate_conflict_spec(&Counter, 2).is_empty());
    }

    #[test]
    fn unsound_spec_is_caught() {
        /// A deliberately broken type that claims writes commute.
        #[derive(Debug)]
        struct BrokenRegister;
        impl SemanticType for BrokenRegister {
            fn type_name(&self) -> &str {
                "BrokenRegister"
            }
            fn initial_state(&self) -> Value {
                Value::Int(0)
            }
            fn apply(
                &self,
                state: &Value,
                op: &Operation,
            ) -> Result<(Value, Value), crate::error::TypeError> {
                IntRegister.apply(state, op)
            }
            fn ops_conflict(&self, _: &Operation, _: &Operation) -> bool {
                false // wrong!
            }
            fn sample_states(&self) -> Vec<Value> {
                IntRegister.sample_states()
            }
            fn sample_operations(&self) -> Vec<Operation> {
                IntRegister.sample_operations()
            }
        }
        let violations = validate_conflict_spec(&BrokenRegister, 1);
        assert!(!violations.is_empty());
        assert!(violations.iter().any(|v| v.step_level));
    }
}
