//! Error types for the core model.

use crate::ids::{ExecId, ObjectId, StepId};
use crate::op::Operation;
use std::fmt;

/// An error applying an operation to an object state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// The operation name is not part of the type's interface.
    UnknownOperation {
        /// The type that rejected the operation.
        type_name: String,
        /// The offending operation.
        op: Operation,
    },
    /// The operation's arguments do not have the expected shape.
    BadArguments {
        /// The type that rejected the operation.
        type_name: String,
        /// The offending operation.
        op: Operation,
        /// Explanation of what was expected.
        expected: String,
    },
    /// The state value does not have the shape this type maintains.
    BadState {
        /// The type that rejected the state.
        type_name: String,
        /// Explanation of what was expected.
        expected: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownOperation { type_name, op } => {
                write!(f, "type {type_name}: unknown operation {op:?}")
            }
            TypeError::BadArguments {
                type_name,
                op,
                expected,
            } => write!(
                f,
                "type {type_name}: bad arguments for {op:?} (expected {expected})"
            ),
            TypeError::BadState {
                type_name,
                expected,
            } => write!(f, "type {type_name}: bad state (expected {expected})"),
        }
    }
}

impl std::error::Error for TypeError {}

/// A violation of the legality conditions of Definition 6 (or of the basic
/// structural well-formedness a history must have before those conditions can
/// even be evaluated).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LegalityError {
    /// A step references an execution that does not exist, or vice versa.
    DanglingReference {
        /// Description of the broken link.
        detail: String,
    },
    /// Condition 1: `B` must be one-to-one — two message steps map to the
    /// same method execution.
    MessageNotInjective {
        /// The execution with two parents.
        child: ExecId,
        /// The two message steps claiming it.
        steps: (StepId, StepId),
    },
    /// Condition 1: a method execution is a proper ancestor of itself.
    CyclicAncestry {
        /// An execution on the cycle.
        exec: ExecId,
    },
    /// Condition 1: a top-level method execution does not belong to the
    /// environment object.
    TopLevelNotEnvironment {
        /// The offending execution.
        exec: ExecId,
    },
    /// An execution other than a top-level one belongs to the environment.
    NestedEnvironmentExecution {
        /// The offending execution.
        exec: ExecId,
    },
    /// The temporal order `<` is not a partial order (it has a cycle).
    OrderCyclic {
        /// A step on the cycle.
        step: StepId,
    },
    /// Condition 2(a): the program order `⊲` of an execution is not
    /// contained in `<`.
    ProgramOrderNotRespected {
        /// The execution whose program order is violated.
        exec: ExecId,
        /// The `⊲`-ordered pair not present in `<`.
        pair: (StepId, StepId),
    },
    /// Condition 2(b): two conflicting local steps are unordered by `<`.
    ConflictingStepsUnordered {
        /// The object on which the conflict occurs.
        object: ObjectId,
        /// The unordered conflicting steps.
        steps: (StepId, StepId),
    },
    /// Condition 2(c): `t < t'` but some descendants of `t`, `t'` are not
    /// ordered accordingly.
    DescendantsNotOrdered {
        /// The ordered pair of steps.
        pair: (StepId, StepId),
        /// The descendant pair that is not ordered.
        descendants: (StepId, StepId),
    },
    /// Condition 3: no topological sort of an object's local steps is legal
    /// on its initial state (a recorded return value is wrong).
    IllegalReturnValue {
        /// The object whose replay failed.
        object: ObjectId,
        /// The step whose recorded return value does not match the replay.
        step: StepId,
        /// What the replay produced.
        detail: String,
    },
    /// Condition 3: replaying an object's local steps failed because an
    /// operation could not be applied at all.
    ReplayFailed {
        /// The object whose replay failed.
        object: ObjectId,
        /// The step at which replay failed.
        step: StepId,
        /// The underlying type error.
        error: TypeError,
    },
    /// Abort semantics (a): an aborted execution affected the final state.
    AbortedExecutionHasEffect {
        /// The object whose state differs.
        object: ObjectId,
    },
    /// Abort semantics (b): an aborted execution has a non-aborted child.
    AbortNotPropagated {
        /// The aborted parent.
        parent: ExecId,
        /// The child that did not abort.
        child: ExecId,
    },
    /// A local step was recorded against the environment object, which has
    /// no variables.
    LocalStepOnEnvironment {
        /// The offending step.
        step: StepId,
    },
    /// A step or execution references an object that is not in the object
    /// base.
    UnknownObject {
        /// The unknown object.
        object: ObjectId,
    },
}

impl fmt::Display for LegalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityError::DanglingReference { detail } => {
                write!(f, "dangling reference: {detail}")
            }
            LegalityError::MessageNotInjective { child, steps } => write!(
                f,
                "B is not one-to-one: execution {child} is the child of both {} and {}",
                steps.0, steps.1
            ),
            LegalityError::CyclicAncestry { exec } => {
                write!(f, "execution {exec} is a proper ancestor of itself")
            }
            LegalityError::TopLevelNotEnvironment { exec } => write!(
                f,
                "top-level execution {exec} does not belong to the environment object"
            ),
            LegalityError::NestedEnvironmentExecution { exec } => write!(
                f,
                "nested execution {exec} belongs to the environment object"
            ),
            LegalityError::OrderCyclic { step } => {
                write!(f, "the temporal order has a cycle through {step}")
            }
            LegalityError::ProgramOrderNotRespected { exec, pair } => write!(
                f,
                "program order of {exec} not respected: {} ⊲ {} but not {} < {}",
                pair.0, pair.1, pair.0, pair.1
            ),
            LegalityError::ConflictingStepsUnordered { object, steps } => write!(
                f,
                "conflicting steps {} and {} on {object} are unordered",
                steps.0, steps.1
            ),
            LegalityError::DescendantsNotOrdered { pair, descendants } => write!(
                f,
                "{} < {} but descendants {} and {} are not ordered",
                pair.0, pair.1, descendants.0, descendants.1
            ),
            LegalityError::IllegalReturnValue {
                object,
                step,
                detail,
            } => write!(
                f,
                "return value of {step} on {object} is not legal: {detail}"
            ),
            LegalityError::ReplayFailed {
                object,
                step,
                error,
            } => {
                write!(f, "replay of {object} failed at {step}: {error}")
            }
            LegalityError::AbortedExecutionHasEffect { object } => {
                write!(f, "aborted executions affected the final state of {object}")
            }
            LegalityError::AbortNotPropagated { parent, child } => write!(
                f,
                "execution {parent} aborted but its child {child} did not"
            ),
            LegalityError::LocalStepOnEnvironment { step } => {
                write!(f, "local step {step} recorded on the environment object")
            }
            LegalityError::UnknownObject { object } => {
                write!(f, "object {object} is not part of the object base")
            }
        }
    }
}

impl std::error::Error for LegalityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = LegalityError::CyclicAncestry { exec: ExecId(3) };
        assert!(e.to_string().contains("E3"));
        let e = LegalityError::ConflictingStepsUnordered {
            object: ObjectId(1),
            steps: (StepId(0), StepId(2)),
        };
        assert!(e.to_string().contains("s0"));
        assert!(e.to_string().contains("s2"));
        let e = TypeError::UnknownOperation {
            type_name: "Counter".into(),
            op: Operation::nullary("Pop"),
        };
        assert!(e.to_string().contains("Counter"));
        assert!(e.to_string().contains("Pop"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TypeError::BadState {
            type_name: "Q".into(),
            expected: "list".into(),
        });
        assert_err(&LegalityError::OrderCyclic { step: StepId(0) });
    }
}
