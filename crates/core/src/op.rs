//! Operations and local steps.
//!
//! A *local operation* `a` of an object (Definition 2) is a pair of
//! functions `(ρ_a, σ_a)`: `ρ_a` maps states to return values and `σ_a` maps
//! states to states. In this library an operation is named and parameterised
//! — e.g. `Deposit(5)` or `Enqueue("x")` — and its two functions are supplied
//! by the object's [`SemanticType`](crate::object::SemanticType)
//! implementation.
//!
//! A *local step* is a pair `(a, v)` of an operation and the value it
//! returned (Definition 2). Conflict between steps (Definition 3) may depend
//! on the return values, which is the source of the extra concurrency
//! discussed in Section 5.1 of the paper (the queue Enqueue/Dequeue example).

use crate::value::Value;
use std::fmt;

/// A named, parameterised local operation (the `a` of a step `(a, v)`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Operation {
    /// Operation name, e.g. `"Deposit"`, `"Enqueue"`, `"Read"`.
    pub name: String,
    /// Operation arguments.
    pub args: Vec<Value>,
}

impl Operation {
    /// Creates an operation with arguments.
    pub fn new(name: impl Into<String>, args: impl IntoIterator<Item = Value>) -> Self {
        Operation {
            name: name.into(),
            args: args.into_iter().collect(),
        }
    }

    /// Creates an operation without arguments.
    pub fn nullary(name: impl Into<String>) -> Self {
        Operation {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// Creates an operation with a single argument.
    pub fn unary(name: impl Into<String>, arg: impl Into<Value>) -> Self {
        Operation {
            name: name.into(),
            args: vec![arg.into()],
        }
    }

    /// Returns the `i`-th argument, if present.
    pub fn arg(&self, i: usize) -> Option<&Value> {
        self.args.get(i)
    }

    /// Returns the `i`-th argument as an integer, if present and an integer.
    pub fn arg_int(&self, i: usize) -> Option<i64> {
        self.arg(i).and_then(Value::as_int)
    }

    /// The reserved name of the abort operation (Section 3, "Transaction
    /// Failures"): a method execution may invoke `Abort` as its last
    /// operation to signal abnormal termination.
    pub const ABORT: &'static str = "__abort";

    /// Creates the distinguished abort operation.
    pub fn abort() -> Self {
        Operation::nullary(Self::ABORT)
    }

    /// Returns `true` if this is the distinguished abort operation.
    pub fn is_abort(&self) -> bool {
        self.name == Self::ABORT
    }
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A local step `(a, v)`: the execution of operation `a` that returned `v`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LocalStep {
    /// The operation that was executed.
    pub op: Operation,
    /// The value the operation returned on the state it was applied to.
    pub ret: Value,
}

impl LocalStep {
    /// Creates a local step from an operation and its return value.
    pub fn new(op: Operation, ret: impl Into<Value>) -> Self {
        LocalStep {
            op,
            ret: ret.into(),
        }
    }

    /// Returns `true` if this step is an abort step.
    pub fn is_abort(&self) -> bool {
        self.op.is_abort()
    }
}

impl fmt::Debug for LocalStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}->{:?}", self.op, self.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let op = Operation::unary("Deposit", 5);
        assert_eq!(op.name, "Deposit");
        assert_eq!(op.arg_int(0), Some(5));
        assert_eq!(op.arg(1), None);

        let op2 = Operation::new("Put", [Value::from("k"), Value::from(1)]);
        assert_eq!(op2.args.len(), 2);

        let op3 = Operation::nullary("Read");
        assert!(op3.args.is_empty());
    }

    #[test]
    fn abort_operation() {
        assert!(Operation::abort().is_abort());
        assert!(!Operation::nullary("Read").is_abort());
        assert!(LocalStep::new(Operation::abort(), ()).is_abort());
    }

    #[test]
    fn debug_format() {
        let op = Operation::new("Put", [Value::from("k"), Value::from(1)]);
        assert_eq!(format!("{op:?}"), "Put(\"k\", 1)");
        let step = LocalStep::new(Operation::nullary("Read"), 7);
        assert_eq!(format!("{step:?}"), "Read()->7");
    }

    #[test]
    fn steps_compare_by_op_and_ret() {
        let a = LocalStep::new(Operation::nullary("Dequeue"), Value::from("x"));
        let b = LocalStep::new(Operation::nullary("Dequeue"), Value::from("y"));
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }
}
