//! Legality of histories (Definition 6).
//!
//! A quadruple `(E, <, B, S)` is a *legal history* iff:
//!
//! 1. `B` is one-to-one, no method execution is a proper ancestor of itself,
//!    and every top-level method execution belongs to the environment;
//! 2. `<` (a) contains every execution's program order `⊲`, (b) orders every
//!    pair of conflicting local steps, and (c) orders all descendents of
//!    ordered steps accordingly;
//! 3. for every object there is a topological sort of its local steps,
//!    consistent with `<`, that is legal on the object's initial state (the
//!    recorded return values are the ones the operations actually produce).
//!
//! Because `<` is represented by per-step time intervals (see
//! [`crate::history`]), condition 2(c) is checked through the equivalent
//! *containment* property: every step's interval lies within the interval of
//! the message step that created its execution. Any history produced by an
//! actual execution has this property (a method cannot outlive the message
//! that invoked it), and containment together with interval order implies
//! condition 2(c) verbatim.

use crate::error::LegalityError;
use crate::history::History;
use crate::ids::{ExecId, StepId};
use crate::replay;
use crate::step::StepKind;

/// Checks every legality condition of Definition 6, returning the first
/// violation found (structural checks first, then conditions 1–3 in order).
pub fn check_legal(h: &History) -> Result<(), LegalityError> {
    check_structure(h)?;
    check_condition1(h)?;
    check_condition2a(h)?;
    check_condition2b(h)?;
    check_condition2c(h)?;
    check_condition3(h)?;
    Ok(())
}

/// Returns `true` if the history satisfies every legality condition.
pub fn is_legal(h: &History) -> bool {
    check_legal(h).is_ok()
}

/// Structural sanity: objects exist, local steps are not issued against the
/// environment, message targets match the child execution's object.
pub fn check_structure(h: &History) -> Result<(), LegalityError> {
    for e in h.execs() {
        if !h.base().contains(e.object) {
            return Err(LegalityError::UnknownObject { object: e.object });
        }
    }
    for s in h.steps() {
        match &s.kind {
            StepKind::Local(_) => {
                if h.object_of_step(s.id).is_environment() {
                    return Err(LegalityError::LocalStepOnEnvironment { step: s.id });
                }
            }
            StepKind::Message { target, child, .. } => {
                if !h.base().contains(*target) {
                    return Err(LegalityError::UnknownObject { object: *target });
                }
                let child_exec = h.exec(*child);
                if child_exec.object != *target
                    || child_exec.parent != Some(s.exec)
                    || child_exec.parent_step != Some(s.id)
                {
                    return Err(LegalityError::DanglingReference {
                        detail: format!(
                            "message step {} and child execution {} disagree about the calling pattern",
                            s.id, child
                        ),
                    });
                }
            }
        }
    }
    for e in h.execs() {
        for &s in &e.steps {
            if h.step(s).exec != e.id {
                return Err(LegalityError::DanglingReference {
                    detail: format!(
                        "step {s} listed under {} but recorded for {}",
                        e.id,
                        h.step(s).exec
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Condition 1: `B` one-to-one, acyclic ancestry, top-level executions belong
/// to the environment (and only top-level executions do).
pub fn check_condition1(h: &History) -> Result<(), LegalityError> {
    // B is one-to-one: each execution is the child of at most one message
    // step, and that step is its recorded parent step.
    let mut claimed: Vec<Option<StepId>> = vec![None; h.exec_count()];
    for s in h.steps() {
        if let StepKind::Message { child, .. } = &s.kind {
            if let Some(prev) = claimed[child.index()] {
                return Err(LegalityError::MessageNotInjective {
                    child: *child,
                    steps: (prev, s.id),
                });
            }
            claimed[child.index()] = Some(s.id);
        }
    }
    // No execution is a proper ancestor of itself.
    for e in h.execs() {
        let mut slow = e.id;
        let mut seen = std::collections::HashSet::new();
        seen.insert(slow);
        while let Some(p) = h.exec(slow).parent {
            if !seen.insert(p) {
                return Err(LegalityError::CyclicAncestry { exec: e.id });
            }
            slow = p;
        }
    }
    // Top-level executions belong to the environment; nested ones do not.
    for e in h.execs() {
        if e.is_top_level() {
            if !e.object.is_environment() {
                return Err(LegalityError::TopLevelNotEnvironment { exec: e.id });
            }
        } else if e.object.is_environment() {
            return Err(LegalityError::NestedEnvironmentExecution { exec: e.id });
        }
    }
    Ok(())
}

/// Condition 2(a): `⊲ ⊆ <` for every method execution.
pub fn check_condition2a(h: &History) -> Result<(), LegalityError> {
    for e in h.execs() {
        for &(a, b) in &e.program_order {
            if !h.precedes(a, b) {
                return Err(LegalityError::ProgramOrderNotRespected {
                    exec: e.id,
                    pair: (a, b),
                });
            }
        }
    }
    Ok(())
}

/// Condition 2(b): every pair of conflicting local steps is ordered by `<`.
pub fn check_condition2b(h: &History) -> Result<(), LegalityError> {
    for o in h.objects_touched() {
        let steps = h.local_steps_of_object(o);
        for (i, &a) in steps.iter().enumerate() {
            for &b in &steps[i + 1..] {
                let conflict = h.steps_conflict(a, b) || h.steps_conflict(b, a);
                if conflict && h.unordered(a, b) {
                    return Err(LegalityError::ConflictingStepsUnordered {
                        object: o,
                        steps: (a, b),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Condition 2(c), via interval containment: every step's interval lies
/// within the interval of the message step that created its execution.
pub fn check_condition2c(h: &History) -> Result<(), LegalityError> {
    for s in h.steps() {
        let exec = h.exec(s.exec);
        if let Some(parent_step) = exec.parent_step {
            let outer = h.interval(parent_step);
            let inner = h.interval(s.id);
            if !outer.contains(&inner) {
                return Err(LegalityError::DescendantsNotOrdered {
                    pair: (parent_step, s.id),
                    descendants: (parent_step, s.id),
                });
            }
        }
    }
    Ok(())
}

/// Condition 3: for every object, the topological sort of its local steps by
/// initiation time is legal on the object's initial state.
pub fn check_condition3(h: &History) -> Result<(), LegalityError> {
    for o in h.objects_touched() {
        replay::final_state(h, o)?;
    }
    Ok(())
}

/// The set of executions that issued at least one step ordered inconsistently
/// with the program order; useful for diagnostics in the execution engine's
/// self-checks.
pub fn executions_violating_program_order(h: &History) -> Vec<ExecId> {
    h.execs()
        .iter()
        .filter(|e| e.program_order.iter().any(|&(a, b)| !h.precedes(a, b)))
        .map(|e| e.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::history::Interval;
    use crate::object::ObjectBase;
    use crate::op::Operation;
    use crate::testutil::{Counter, IntRegister};
    use crate::value::Value;
    use std::sync::Arc;

    fn base_xy() -> (Arc<ObjectBase>, crate::ids::ObjectId, crate::ids::ObjectId) {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(Counter));
        (Arc::new(base), x, y)
    }

    #[test]
    fn well_built_history_is_legal() {
        let (base, x, y) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let (m1, e1) = b.invoke(t1, x, "set", []);
        b.local_applied(e1, Operation::unary("Write", 5)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        let (m2, e2) = b.invoke(t1, y, "bump", []);
        b.local_applied(e2, Operation::unary("Add", 1)).unwrap();
        b.complete_invoke(m2, Value::Unit);
        let h = b.build();
        assert!(is_legal(&h));
        assert!(executions_violating_program_order(&h).is_empty());
    }

    #[test]
    fn wrong_return_value_violates_condition3() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        // Initial state is 0, but we record a read returning 7.
        b.local(e, Operation::nullary("Read"), Value::Int(7));
        let h = b.build();
        assert!(matches!(
            check_legal(&h),
            Err(LegalityError::IllegalReturnValue { .. })
        ));
    }

    #[test]
    fn unknown_operation_violates_condition3() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        b.local(e, Operation::nullary("Bogus"), Value::Unit);
        let h = b.build();
        assert!(matches!(
            check_legal(&h),
            Err(LegalityError::ReplayFailed { .. })
        ));
    }

    #[test]
    fn unordered_conflicting_steps_violate_condition2b() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let (_, e1) = b.invoke(t1, x, "m", []);
        let t2 = b.begin_top_level("T2");
        let (_, e2) = b.invoke(t2, x, "m", []);
        b.local_with_interval(e1, Operation::unary("Write", 1), (), Interval::new(50, 60));
        b.local_with_interval(e2, Operation::unary("Write", 2), (), Interval::new(55, 65));
        let h = b.build();
        assert!(matches!(
            check_legal(&h),
            Err(LegalityError::ConflictingStepsUnordered { .. })
        ));
    }

    #[test]
    fn overlapping_nonconflicting_steps_are_fine() {
        let (base, _, y) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let (_, e1) = b.invoke(t1, y, "m", []);
        let t2 = b.begin_top_level("T2");
        let (_, e2) = b.invoke(t2, y, "m", []);
        // Two Adds on a counter commute, so they may be unordered.
        b.local_with_interval(e1, Operation::unary("Add", 1), (), Interval::new(50, 60));
        b.local_with_interval(e2, Operation::unary("Add", 2), (), Interval::new(55, 65));
        let h = b.build();
        // Condition 2b passes; condition 3 needs a consistent replay, which
        // exists because the adds commute. But the recorded return values
        // must match: Add returns Unit, which is state-independent, so the
        // history is legal.
        assert!(is_legal(&h));
    }

    #[test]
    fn top_level_must_be_environment() {
        // Build by hand: an execution with no parent on a real object.
        let (base, x, _) = base_xy();
        let execs = vec![crate::exec_tree::MethodExecution {
            id: ExecId(0),
            object: x,
            method: "m".into(),
            parent: None,
            parent_step: None,
            steps: vec![],
            program_order: vec![],
            aborted: false,
        }];
        let h = History::new(base.clone(), base.initial_states(), execs, vec![], vec![]);
        assert!(matches!(
            check_legal(&h),
            Err(LegalityError::TopLevelNotEnvironment { .. })
        ));
    }

    #[test]
    fn program_order_violation_detected() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        b.set_auto_program_order(false);
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        let s1 = b.local_with_interval(e, Operation::nullary("Read"), 0, Interval::new(10, 10));
        let s2 = b.local_with_interval(e, Operation::nullary("Read"), 0, Interval::new(10, 10));
        // Claim s1 ⊲ s2 although they are simultaneous.
        b.program_order_edge(e, s1, s2);
        let h = b.build();
        assert!(matches!(
            check_legal(&h),
            Err(LegalityError::ProgramOrderNotRespected { .. })
        ));
    }

    #[test]
    fn containment_violation_detected() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, x, "m", []);
        // Complete the message *before* its local step runs: the child step
        // then falls outside the message interval.
        b.complete_invoke(m, Value::Unit);
        b.local_applied(e, Operation::nullary("Read")).unwrap();
        let h = b.build();
        assert!(matches!(
            check_legal(&h),
            Err(LegalityError::DescendantsNotOrdered { .. })
        ));
    }

    use crate::ids::ExecId;
}
