//! The serialisation graph and the Serialisability Theorem (Section 4).
//!
//! The serialisation graph `SG(h)` (Definition 9) has one node per method
//! execution and an edge `e → e'` between incomparable executions whenever
//!
//! * **(a)** some local step issued in `e`'s subtree precedes and conflicts
//!   with some local step issued in `e'`'s subtree, or
//! * **(b)** `lca(e, e')` exists and the message steps of the lca leading to
//!   `e` and `e'` are ordered by the lca's program order `⊲`.
//!
//! Theorem 2 states that acyclicity of `SG(h)` is sufficient for
//! serialisability. [`equivalent_serial_history`] makes the theorem's proof
//! executable: given an acyclic graph it constructs the equivalent serial
//! history `h_s` used in the proof, which downstream tests then verify to be
//! legal, serial and equivalent.

use crate::graph::DiGraph;
use crate::history::History;
use crate::ids::{ExecId, StepId};
use std::collections::BTreeMap;

/// The serialisation graph `SG(h)` of a history.
#[derive(Clone, Debug)]
pub struct SerialisationGraph {
    graph: DiGraph<ExecId>,
}

impl SerialisationGraph {
    /// Builds `SG(h)` per Definition 9 (including, per the Observation
    /// following it, the lifted edges between all incomparable ancestor
    /// pairs).
    pub fn build(h: &History) -> Self {
        let mut graph = DiGraph::new();
        for e in h.execs() {
            graph.add_node(e.id);
        }

        // Type (a): conflicting, ordered local steps of incomparable
        // executions, lifted to every incomparable ancestor pair.
        for o in h.objects_touched() {
            let steps = h.local_steps_of_object(o);
            for &u in &steps {
                for &v in &steps {
                    if u == v || !h.precedes(u, v) || !h.steps_conflict(u, v) {
                        continue;
                    }
                    let eu = h.exec_of_step(u);
                    let ev = h.exec_of_step(v);
                    for &a in &h.ancestors_of(eu) {
                        for &b in &h.ancestors_of(ev) {
                            if h.incomparable(a, b) {
                                graph.add_edge(a, b);
                            }
                        }
                    }
                }
            }
        }

        // Type (b): message steps of a common parent ordered by its program
        // order; every execution under the earlier message precedes every
        // execution under the later one.
        for f in h.execs() {
            let messages: Vec<StepId> = f
                .steps
                .iter()
                .copied()
                .filter(|&s| h.step(s).is_message())
                .collect();
            for &t in &messages {
                for &t2 in &messages {
                    if t == t2 || !f.program_precedes(t, t2) {
                        continue;
                    }
                    let (Some(c1), Some(c2)) =
                        (h.step(t).message_child(), h.step(t2).message_child())
                    else {
                        continue;
                    };
                    for a in h.subtree_execs(c1) {
                        for b in h.subtree_execs(c2) {
                            if h.incomparable(a, b) {
                                graph.add_edge(a, b);
                            }
                        }
                    }
                }
            }
        }

        SerialisationGraph { graph }
    }

    /// The underlying directed graph.
    pub fn graph(&self) -> &DiGraph<ExecId> {
        &self.graph
    }

    /// Returns `true` if the edge `e → e'` is present.
    pub fn has_edge(&self, e: ExecId, e2: ExecId) -> bool {
        self.graph.has_edge(e, e2)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (ExecId, ExecId)> + '_ {
        self.graph.edges()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Returns `true` if the graph has no directed cycle (the sufficient
    /// condition of Theorem 2).
    pub fn is_acyclic(&self) -> bool {
        self.graph.is_acyclic()
    }

    /// Returns a cycle, if one exists.
    pub fn find_cycle(&self) -> Option<Vec<ExecId>> {
        self.graph.find_cycle()
    }

    /// A topological order of the executions, if the graph is acyclic.
    pub fn topological_order(&self) -> Option<Vec<ExecId>> {
        self.graph.topological_order()
    }
}

/// Builds the serialisation graph of a history.
pub fn serialisation_graph(h: &History) -> SerialisationGraph {
    SerialisationGraph::build(h)
}

/// The serialisation-graph test: returns `true` if `SG(h)` is acyclic, which
/// by Theorem 2 implies that `h` is serialisable.
pub fn certifies_serialisable(h: &History) -> bool {
    serialisation_graph(h).is_acyclic()
}

/// Constructs the equivalent serial history of Theorem 2's proof.
///
/// Siblings (at every level) are ordered consistently with the serialisation
/// graph; within an execution, message steps follow the chosen order of their
/// children and all steps respect the recorded program order. Returns `None`
/// if `SG(h)` is cyclic (the construction then need not exist).
pub fn equivalent_serial_history(h: &History) -> Option<History> {
    let sg = serialisation_graph(h);
    if !sg.is_acyclic() {
        return None;
    }

    // Order every sibling group (top-level executions and the children of
    // each execution) consistently with SG(h).
    let mut sibling_orders: BTreeMap<Option<ExecId>, Vec<ExecId>> = BTreeMap::new();
    let mut groups: Vec<(Option<ExecId>, Vec<ExecId>)> = vec![(None, h.top_level_execs())];
    for e in h.execs() {
        groups.push((Some(e.id), h.children_of(e.id).to_vec()));
    }
    for (parent, group) in groups {
        if group.is_empty() {
            continue;
        }
        let keep: std::collections::BTreeSet<ExecId> = group.iter().copied().collect();
        let sub = sg.graph().restrict_to(&keep);
        let order = sub.topological_order()?;
        sibling_orders.insert(parent, order);
    }

    // Within each execution, order its steps so that the program order is
    // respected and message steps follow the sibling order of their children.
    let mut step_orders: BTreeMap<ExecId, Vec<StepId>> = BTreeMap::new();
    for e in h.execs() {
        let mut g: DiGraph<StepId> = DiGraph::new();
        for &s in &e.steps {
            g.add_node(s);
        }
        for &(a, b) in &e.program_order {
            g.add_edge(a, b);
        }
        let sibling_order = sibling_orders.get(&Some(e.id)).cloned().unwrap_or_default();
        let rank: BTreeMap<ExecId, usize> = sibling_order
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let messages: Vec<StepId> = e
            .steps
            .iter()
            .copied()
            .filter(|&s| h.step(s).is_message())
            .collect();
        for &m1 in &messages {
            for &m2 in &messages {
                if m1 == m2 {
                    continue;
                }
                let (Some(c1), Some(c2)) = (h.step(m1).message_child(), h.step(m2).message_child())
                else {
                    continue;
                };
                if let (Some(&r1), Some(&r2)) = (rank.get(&c1), rank.get(&c2)) {
                    if r1 < r2 {
                        g.add_edge(m1, m2);
                    }
                }
            }
        }
        // Preserve the recorded order of the execution's own conflicting
        // local steps (Definition 4(b) requires them to be ⊲-ordered, but be
        // conservative in case the input is looser).
        let locals: Vec<StepId> = e
            .steps
            .iter()
            .copied()
            .filter(|&s| h.step(s).is_local())
            .collect();
        for &l1 in &locals {
            for &l2 in &locals {
                if l1 != l2 && h.precedes(l1, l2) && h.steps_conflict(l1, l2) {
                    g.add_edge(l1, l2);
                }
            }
        }
        step_orders.insert(e.id, g.topological_order()?);
    }

    let sibling_order_fn = |h2: &History, parent: Option<ExecId>| -> Vec<ExecId> {
        sibling_orders
            .get(&parent)
            .cloned()
            .unwrap_or_else(|| crate::equivalence::sibling_order_by_id(h2, parent))
    };
    let step_order_fn = |_h2: &History, e: ExecId| -> Vec<StepId> {
        step_orders.get(&e).cloned().unwrap_or_default()
    };
    let intervals = crate::equivalence::serial_layout(h, &sibling_order_fn, &step_order_fn);
    Some(h.with_intervals(intervals))
}

/// A convenience bundle: the serialisation-graph verdict on a history plus,
/// when acyclic, the constructed equivalent serial history's verification
/// results. Used by integration tests and by the E5 experiment.
#[derive(Debug)]
pub struct SgAnalysis {
    /// Whether `SG(h)` is acyclic.
    pub acyclic: bool,
    /// A cycle, if one exists.
    pub cycle: Option<Vec<ExecId>>,
    /// Number of edges in the graph.
    pub edges: usize,
    /// Whether the constructed serial history (if any) is legal, serial and
    /// equivalent to `h`.
    pub witness_verified: Option<bool>,
}

/// Runs the full Theorem 2 pipeline on a history.
pub fn analyse(h: &History) -> SgAnalysis {
    let sg = serialisation_graph(h);
    let acyclic = sg.is_acyclic();
    let cycle = sg.find_cycle();
    let edges = sg.edge_count();
    let witness_verified = if acyclic {
        equivalent_serial_history(h).map(|w| {
            crate::legality::is_legal(&w)
                && crate::equivalence::is_serial(&w)
                && crate::equivalence::equivalent(h, &w)
        })
    } else {
        None
    };
    SgAnalysis {
        acyclic,
        cycle,
        edges,
        witness_verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::object::ObjectBase;
    use crate::op::Operation;
    use crate::testutil::{Counter, IntRegister};
    use crate::value::Value;
    use std::sync::Arc;

    fn two_object_base() -> (Arc<ObjectBase>, crate::ids::ObjectId, crate::ids::ObjectId) {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(IntRegister));
        (Arc::new(base), x, y)
    }

    /// The Section 2 example: object x serialises T1 before T2, object y the
    /// reverse. SG has a 2-cycle.
    #[test]
    fn incompatible_orders_make_a_cycle() {
        let (base, x, y) = two_object_base();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let t2 = b.begin_top_level("T2");
        let (m1, e1) = b.invoke(t1, x, "w", []);
        b.local_applied(e1, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        let (m2, e2) = b.invoke(t2, x, "w", []);
        b.local_applied(e2, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m2, Value::Unit);
        let (m3, e3) = b.invoke(t2, y, "w", []);
        b.local_applied(e3, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m3, Value::Unit);
        let (m4, e4) = b.invoke(t1, y, "w", []);
        b.local_applied(e4, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m4, Value::Unit);
        let h = b.build();
        let sg = serialisation_graph(&h);
        assert!(sg.has_edge(t1, t2));
        assert!(sg.has_edge(t2, t1));
        assert!(!sg.is_acyclic());
        assert!(sg.find_cycle().is_some());
        assert!(!certifies_serialisable(&h));
        assert!(equivalent_serial_history(&h).is_none());
        let analysis = analyse(&h);
        assert!(!analysis.acyclic);
        assert!(analysis.witness_verified.is_none());
    }

    /// A serialisable interleaving: conflicts all point the same way.
    #[test]
    fn consistent_orders_are_acyclic_and_witnessed() {
        let (base, x, y) = two_object_base();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let t2 = b.begin_top_level("T2");
        // T1 writes x, then T2 writes x, then T1 writes y, then T2 writes y:
        // both objects serialise T1 before T2.
        let (m1, e1) = b.invoke(t1, x, "w", []);
        b.local_applied(e1, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        let (m2, e2) = b.invoke(t2, x, "w", []);
        b.local_applied(e2, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m2, Value::Unit);
        let (m3, e3) = b.invoke(t1, y, "w", []);
        b.local_applied(e3, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m3, Value::Unit);
        let (m4, e4) = b.invoke(t2, y, "w", []);
        b.local_applied(e4, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m4, Value::Unit);
        let h = b.build();
        let sg = serialisation_graph(&h);
        assert!(sg.has_edge(t1, t2));
        assert!(!sg.has_edge(t2, t1));
        assert!(sg.is_acyclic());
        let witness = equivalent_serial_history(&h).expect("acyclic SG yields a witness");
        assert!(crate::legality::is_legal(&witness));
        assert!(crate::equivalence::is_serial(&witness));
        assert!(crate::equivalence::equivalent(&h, &witness));
        let analysis = analyse(&h);
        assert_eq!(analysis.witness_verified, Some(true));
    }

    /// Commuting operations produce no SG edges: concurrent counter
    /// increments are serialisable whatever their interleaving (the semantic
    /// advantage of Definition 3 over read/write conflicts).
    #[test]
    fn commuting_steps_produce_no_edges() {
        let mut base = ObjectBase::new();
        let c = base.add_object("c", Arc::new(Counter));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t1 = b.begin_top_level("T1");
        let t2 = b.begin_top_level("T2");
        let (m1, e1) = b.invoke(t1, c, "bump", []);
        let (m2, e2) = b.invoke(t2, c, "bump", []);
        b.local_applied(e1, Operation::unary("Add", 1)).unwrap();
        b.local_applied(e2, Operation::unary("Add", 1)).unwrap();
        b.local_applied(e1, Operation::unary("Add", 1)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        b.complete_invoke(m2, Value::Unit);
        let h = b.build();
        let sg = serialisation_graph(&h);
        assert_eq!(sg.edge_count(), 0);
        assert!(certifies_serialisable(&h));
        let witness = equivalent_serial_history(&h).unwrap();
        assert!(crate::equivalence::equivalent(&h, &witness));
    }

    /// Program order between two messages of the same parent creates type (b)
    /// edges between the executions they spawn.
    #[test]
    fn program_order_creates_type_b_edges() {
        let (base, x, y) = two_object_base();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (m1, e1) = b.invoke(t, x, "w", []);
        b.local_applied(e1, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        let (m2, e2) = b.invoke(t, y, "w", []);
        b.local_applied(e2, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m2, Value::Unit);
        let h = b.build();
        let sg = serialisation_graph(&h);
        assert!(sg.has_edge(e1, e2));
        assert!(!sg.has_edge(e2, e1));
        assert!(sg.is_acyclic());
    }

    /// The SG test is sufficient but not necessary: a history can be
    /// serialisable although its SG has a cycle (write-write conflicts whose
    /// effects happen to cancel out are the classic example). Here we only
    /// assert sufficiency on a sample of builder histories; the property
    /// tests cover random histories.
    #[test]
    fn acyclic_implies_bruteforce_serialisable() {
        let (base, x, y) = two_object_base();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let t2 = b.begin_top_level("T2");
        let (m1, e1) = b.invoke(t1, x, "w", []);
        b.local_applied(e1, Operation::unary("Write", 7)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        let (m2, e2) = b.invoke(t2, y, "r", []);
        b.local_applied(e2, Operation::nullary("Read")).unwrap();
        b.complete_invoke(m2, Value::Int(0));
        let h = b.build();
        assert!(certifies_serialisable(&h));
        assert!(crate::equivalence::is_serialisable_bruteforce(&h, 64));
    }
}
