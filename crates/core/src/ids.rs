//! Identifier newtypes for the object-base model.
//!
//! The model of Hadzilacos & Hadzilacos is built from three kinds of
//! entities: *objects*, *method executions* (transactions) and *steps*.
//! Each gets a small copyable identifier so that histories can be stored as
//! flat vectors indexed by id.

use std::fmt;

/// Identifies an object in an [`ObjectBase`](crate::object::ObjectBase).
///
/// The distinguished *environment* object (Definition 1 of the paper), whose
/// methods are the users' top-level transactions, is [`ObjectId::ENVIRONMENT`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The distinguished environment object. It has no variables; its method
    /// executions are the top-level (user) transactions.
    pub const ENVIRONMENT: ObjectId = ObjectId(u32::MAX);

    /// Returns `true` if this is the environment object.
    #[inline]
    pub fn is_environment(self) -> bool {
        self == Self::ENVIRONMENT
    }

    /// Raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_environment() {
            write!(f, "Obj(env)")
        } else {
            write!(f, "Obj({})", self.0)
        }
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies a method execution (a transaction in the broad sense of the
/// paper: user transactions and nested method executions are the same kind of
/// entity).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecId(pub u32);

impl ExecId {
    /// Raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ExecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Display for ExecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies a step (local or message) within a history.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepId(pub u32);

impl StepId {
    /// Raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_is_distinguished() {
        assert!(ObjectId::ENVIRONMENT.is_environment());
        assert!(!ObjectId(0).is_environment());
        assert!(!ObjectId(42).is_environment());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", ObjectId(3)), "Obj(3)");
        assert_eq!(format!("{:?}", ObjectId::ENVIRONMENT), "Obj(env)");
        assert_eq!(format!("{:?}", ExecId(7)), "E7");
        assert_eq!(format!("{:?}", StepId(11)), "s11");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ExecId(1) < ExecId(2));
        assert!(StepId(0) < StepId(10));
        assert!(ObjectId(5) < ObjectId::ENVIRONMENT);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ObjectId(9).index(), 9);
        assert_eq!(ExecId(9).index(), 9);
        assert_eq!(StepId(9).index(), 9);
    }
}
