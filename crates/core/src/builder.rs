//! Programmatic construction of histories.
//!
//! [`HistoryBuilder`] is the way histories are created throughout the
//! workspace: by unit tests building small hand-crafted interleavings, by the
//! execution engine recording what actually happened during a simulated run,
//! and by random-history generators for property tests.
//!
//! The builder maintains a virtual clock. Local steps are atomic and occupy a
//! single tick; message steps span the interval from their invocation to the
//! call of [`HistoryBuilder::complete_invoke`] (or, if never completed
//! explicitly, to the completion of the last step in their subtree). The
//! temporal order `<` of the resulting history is derived from these
//! intervals, matching the paper's reading of `t < t'` as "`t` completed
//! before `t'` was initiated".

use crate::error::TypeError;
use crate::exec_tree::MethodExecution;
use crate::history::{History, Interval};
use crate::ids::{ExecId, ObjectId, StepId};
use crate::object::ObjectBase;
use crate::op::{LocalStep, Operation};
use crate::step::{StepKind, StepRecord};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Start-time sentinel of a snapshot message step whose interval is deferred
/// to [`HistoryBuilder::build`] (resolved to the span of its subtree).
const SNAPSHOT_PENDING: u64 = u64::MAX;

/// Incrementally builds a [`History`].
#[derive(Debug)]
pub struct HistoryBuilder {
    base: Arc<ObjectBase>,
    initial_states: BTreeMap<ObjectId, Value>,
    tracked_states: BTreeMap<ObjectId, Value>,
    execs: Vec<MethodExecution>,
    steps: Vec<StepRecord>,
    starts: Vec<u64>,
    ends: Vec<Option<u64>>,
    tick: u64,
    auto_program_order: bool,
    last_completed_step: Vec<Option<StepId>>,
}

impl HistoryBuilder {
    /// Creates a builder over an object base. Initial states default to the
    /// object base's defaults.
    pub fn new(base: Arc<ObjectBase>) -> Self {
        let initial = base.initial_states();
        HistoryBuilder {
            tracked_states: initial.clone(),
            initial_states: initial,
            base,
            execs: Vec::new(),
            steps: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            tick: 2,
            auto_program_order: true,
            last_completed_step: Vec::new(),
        }
    }

    /// Overrides the initial state of one object for this history.
    pub fn set_initial_state(&mut self, o: ObjectId, state: Value) {
        self.initial_states.insert(o, state.clone());
        self.tracked_states.insert(o, state);
    }

    /// Controls whether steps issued sequentially within one execution are
    /// automatically chained in program order `⊲` (defaults to `true`).
    /// Disable this when building methods whose steps are issued in parallel
    /// (Section 3(c) internal parallelism).
    pub fn set_auto_program_order(&mut self, on: bool) {
        self.auto_program_order = on;
    }

    /// The underlying object base.
    pub fn base(&self) -> &Arc<ObjectBase> {
        &self.base
    }

    /// The builder's view of an object's current state (the result of all
    /// `local_applied` steps so far).
    pub fn current_state(&self, o: ObjectId) -> Option<&Value> {
        self.tracked_states.get(&o)
    }

    /// Advances and returns the virtual clock.
    ///
    /// The clock starts at 2 and strides by 2, so every clock-allocated step
    /// sits at an even time ≥ 2. The odd instants in between (and the instant
    /// 1 before everything) are reserved for snapshot reads, which fabricate
    /// their position in time next to the committed version they observed
    /// ([`HistoryBuilder::snapshot_local`]).
    pub fn next_tick(&mut self) -> u64 {
        let t = self.tick;
        self.tick += 2;
        t
    }

    // ----- executions -----------------------------------------------------

    /// Begins a top-level (user) transaction: a method execution of the
    /// environment object.
    pub fn begin_top_level(&mut self, method: impl Into<String>) -> ExecId {
        self.push_exec(ObjectId::ENVIRONMENT, method.into(), None, None)
    }

    /// Issues a message step from `parent` invoking `method` on `target`, and
    /// creates the child method execution it results in. The message step's
    /// return value is a placeholder until [`complete_invoke`] is called.
    ///
    /// [`complete_invoke`]: HistoryBuilder::complete_invoke
    pub fn invoke(
        &mut self,
        parent: ExecId,
        target: ObjectId,
        method: impl Into<String>,
        args: impl IntoIterator<Item = Value>,
    ) -> (StepId, ExecId) {
        let method = method.into();
        let start = self.next_tick();
        let step_id = StepId(self.steps.len() as u32);
        let child = ExecId(self.execs.len() as u32);
        self.steps.push(StepRecord {
            id: step_id,
            exec: parent,
            kind: StepKind::Message {
                target,
                method: method.clone(),
                args: args.into_iter().collect(),
                child,
                ret: Value::Unit,
            },
        });
        self.starts.push(start);
        self.ends.push(None);
        self.attach_step(parent, step_id);
        let created = self.push_exec(target, method, Some(parent), Some(step_id));
        debug_assert_eq!(created, child);
        (step_id, child)
    }

    /// Completes a message step: records the value returned to the sender and
    /// closes the step's time interval.
    ///
    /// # Panics
    /// Panics if `step` is not a message step or was already completed.
    pub fn complete_invoke(&mut self, step: StepId, ret: Value) {
        let end = self.next_tick();
        assert!(
            self.ends[step.index()].is_none(),
            "message step {step} already completed"
        );
        match &mut self.steps[step.index()].kind {
            StepKind::Message { ret: slot, .. } => *slot = ret,
            _ => panic!("{step} is not a message step"),
        }
        self.ends[step.index()] = Some(end);
        let exec = self.steps[step.index()].exec;
        self.last_completed_step[exec.index()] = Some(step);
    }

    /// Records a local step of `exec` with an explicitly supplied return
    /// value. No state tracking is performed; use this to build histories
    /// with deliberately wrong return values (for legality tests) or when the
    /// caller manages states itself.
    pub fn local(&mut self, exec: ExecId, op: Operation, ret: impl Into<Value>) -> StepId {
        let t = self.next_tick();
        self.push_local(exec, LocalStep::new(op, ret), Interval::instant(t))
    }

    /// Records a local step of `exec`, computing the return value (and
    /// updating the builder's tracked state) by applying the operation to the
    /// object's current state. This is the convenient way to build *legal*
    /// histories.
    pub fn local_applied(
        &mut self,
        exec: ExecId,
        op: Operation,
    ) -> Result<(StepId, Value), TypeError> {
        let object = self.execs[exec.index()].object;
        assert!(
            !object.is_environment(),
            "the environment object has no variables; {exec} cannot issue local steps"
        );
        let ty = self.base.type_of(object);
        let state = self
            .tracked_states
            .get(&object)
            .cloned()
            .unwrap_or_else(|| ty.initial_state());
        let (new_state, ret) = ty.apply(&state, &op)?;
        self.tracked_states.insert(object, new_state);
        let t = self.next_tick();
        let id = self.push_local(exec, LocalStep::new(op, ret.clone()), Interval::instant(t));
        Ok((id, ret))
    }

    /// Records a local step with an explicit time interval. Use this to build
    /// histories containing *unordered* (overlapping) local steps, e.g. to
    /// exercise legality condition 2(b).
    pub fn local_with_interval(
        &mut self,
        exec: ExecId,
        op: Operation,
        ret: impl Into<Value>,
        interval: Interval,
    ) -> StepId {
        // Keep the clock strictly past the interval, rounded up to even so
        // clock-allocated steps stay off the odd instants snapshot reads use.
        let t = interval.end + 1;
        self.tick = self.tick.max(t + (t & 1));
        self.push_local(exec, LocalStep::new(op, ret), interval)
    }

    /// Marks an execution as aborted and records the distinguished abort step
    /// as its last operation (Section 3, "Transaction Failures").
    pub fn abort(&mut self, exec: ExecId) -> StepId {
        self.execs[exec.index()].aborted = true;
        let t = self.next_tick();
        self.push_local(
            exec,
            LocalStep::new(Operation::abort(), ()),
            Interval::instant(t),
        )
    }

    /// Adds an explicit program-order edge `a ⊲ b` within an execution.
    pub fn program_order_edge(&mut self, exec: ExecId, a: StepId, b: StepId) {
        self.execs[exec.index()].program_order.push((a, b));
    }

    // ----- snapshot reads ---------------------------------------------------

    /// Issues a message step of a snapshot-read transaction. Unlike
    /// [`invoke`](HistoryBuilder::invoke), no clock tick is consumed: the
    /// step's interval is deferred and resolved by
    /// [`build`](HistoryBuilder::build) to the span of its subtree, because a
    /// snapshot read's local steps fabricate their position in time next to
    /// the committed versions they observed — possibly far in the builder's
    /// past.
    pub fn snapshot_invoke(
        &mut self,
        parent: ExecId,
        target: ObjectId,
        method: impl Into<String>,
        args: impl IntoIterator<Item = Value>,
    ) -> (StepId, ExecId) {
        let method = method.into();
        let step_id = StepId(self.steps.len() as u32);
        let child = ExecId(self.execs.len() as u32);
        self.steps.push(StepRecord {
            id: step_id,
            exec: parent,
            kind: StepKind::Message {
                target,
                method: method.clone(),
                args: args.into_iter().collect(),
                child,
                ret: Value::Unit,
            },
        });
        self.starts.push(SNAPSHOT_PENDING);
        self.ends.push(None);
        // No program-order chaining: snapshot steps are ordered by their
        // fabricated intervals alone (each read anchors to a different
        // version, so issue order means nothing in history time).
        self.execs[parent.index()].steps.push(step_id);
        let created = self.push_exec(target, method, Some(parent), Some(step_id));
        debug_assert_eq!(created, child);
        (step_id, child)
    }

    /// Records a local read of a snapshot transaction, placed at the odd
    /// instant just after `anchor` — the last step of the committed version
    /// the read observed. With no anchor (the object was never written before
    /// the pinned watermark) the read sits at instant 1, before every
    /// clock-allocated step. No clock tick is consumed and no program order
    /// is recorded.
    pub fn snapshot_local(
        &mut self,
        exec: ExecId,
        op: Operation,
        ret: impl Into<Value>,
        anchor: Option<StepId>,
    ) -> StepId {
        let t = match anchor {
            Some(a) => self.starts[a.index()] + 1,
            None => 1,
        };
        let id = StepId(self.steps.len() as u32);
        self.steps.push(StepRecord {
            id,
            exec,
            kind: StepKind::Local(LocalStep::new(op, ret)),
        });
        self.starts.push(t);
        self.ends.push(Some(t));
        self.execs[exec.index()].steps.push(id);
        id
    }

    /// Completes a snapshot message step: records the value returned to the
    /// sender. The interval stays deferred (resolved in
    /// [`build`](HistoryBuilder::build)).
    ///
    /// # Panics
    /// Panics if `step` is not a message step.
    pub fn snapshot_complete(&mut self, step: StepId, ret: Value) {
        match &mut self.steps[step.index()].kind {
            StepKind::Message { ret: slot, .. } => *slot = ret,
            _ => panic!("{step} is not a message step"),
        }
    }

    // ----- assembly ---------------------------------------------------------

    /// Finishes construction and returns the history.
    ///
    /// Message steps that were never explicitly completed get a completion
    /// time no earlier than every step in their subtree (they are still
    /// "running" when the history ends, so they are unordered with respect to
    /// anything that started after them).
    pub fn build(mut self) -> History {
        // Close open message steps bottom-up (children were created after
        // their parents, so a reverse scan sees children first).
        let final_tick = self.tick;
        for idx in (0..self.steps.len()).rev() {
            if self.starts[idx] == SNAPSHOT_PENDING {
                // A snapshot message: its interval is the span of its subtree
                // (children sit later in the arrays, so their sentinels are
                // already resolved by this reverse scan). An empty subtree
                // collapses to the pre-history instant 1.
                let child = match &self.steps[idx].kind {
                    StepKind::Message { child, .. } => *child,
                    StepKind::Local(_) => unreachable!("snapshot sentinel on a local step"),
                };
                let (mut start, mut end) = (u64::MAX, 0);
                for &s in &self.exec_subtree_steps(child) {
                    start = start.min(self.starts[s.index()]);
                    end = end.max(self.ends[s.index()].unwrap_or(self.starts[s.index()]));
                }
                if start == u64::MAX {
                    (start, end) = (1, 1);
                }
                self.starts[idx] = start;
                self.ends[idx] = Some(end.max(start));
                continue;
            }
            if self.ends[idx].is_none() {
                let step = &self.steps[idx];
                let end = match &step.kind {
                    StepKind::Message { child, .. } => {
                        let mut end = self.starts[idx];
                        for &s in &self.exec_subtree_steps(*child) {
                            if let Some(e) = self.ends[s.index()] {
                                end = end.max(e);
                            } else {
                                end = end.max(self.starts[s.index()]);
                            }
                        }
                        end.max(final_tick)
                    }
                    StepKind::Local(_) => self.starts[idx],
                };
                self.ends[idx] = Some(end);
            }
        }
        let intervals: Vec<Interval> = self
            .starts
            .iter()
            .zip(&self.ends)
            .map(|(&s, &e)| Interval::new(s, e.expect("all ends assigned")))
            .collect();
        History::new(
            self.base,
            self.initial_states,
            self.execs,
            self.steps,
            intervals,
        )
    }

    // ----- internals --------------------------------------------------------

    fn push_exec(
        &mut self,
        object: ObjectId,
        method: String,
        parent: Option<ExecId>,
        parent_step: Option<StepId>,
    ) -> ExecId {
        let id = ExecId(self.execs.len() as u32);
        self.execs.push(MethodExecution {
            id,
            object,
            method,
            parent,
            parent_step,
            steps: Vec::new(),
            program_order: Vec::new(),
            aborted: false,
        });
        self.last_completed_step.push(None);
        id
    }

    fn push_local(&mut self, exec: ExecId, local: LocalStep, interval: Interval) -> StepId {
        let id = StepId(self.steps.len() as u32);
        self.steps.push(StepRecord {
            id,
            exec,
            kind: StepKind::Local(local),
        });
        self.starts.push(interval.start);
        self.ends.push(Some(interval.end));
        self.attach_step(exec, id);
        self.last_completed_step[exec.index()] = Some(id);
        id
    }

    fn attach_step(&mut self, exec: ExecId, step: StepId) {
        if self.auto_program_order {
            if let Some(prev) = self.last_completed_step[exec.index()] {
                self.execs[exec.index()].program_order.push((prev, step));
            }
        }
        self.execs[exec.index()].steps.push(step);
    }

    fn exec_subtree_steps(&self, root: ExecId) -> Vec<StepId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(e) = stack.pop() {
            for &s in &self.execs[e.index()].steps {
                out.push(s);
                if let StepKind::Message { child, .. } = &self.steps[s.index()].kind {
                    stack.push(*child);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{Counter, IntRegister};

    fn base_xy() -> (Arc<ObjectBase>, ObjectId, ObjectId) {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(Counter));
        (Arc::new(base), x, y)
    }

    #[test]
    fn sequential_build_chains_program_order() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, x, "bump", []);
        let (s1, _) = b.local_applied(e, Operation::nullary("Read")).unwrap();
        let (s2, _) = b.local_applied(e, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m, Value::Unit);
        let h = b.build();
        let exec = h.exec(e);
        assert!(exec.program_precedes(s1, s2));
        assert!(h.precedes(s1, s2));
        // The message interval contains both local steps.
        assert!(h.interval(m).contains(&h.interval(s1)));
        assert!(h.interval(m).contains(&h.interval(s2)));
    }

    #[test]
    fn local_applied_tracks_state_and_returns() {
        let (base, x, y) = base_xy();
        let mut b = HistoryBuilder::new(base);
        b.set_initial_state(x, Value::Int(10));
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        let (_, r) = b.local_applied(e, Operation::nullary("Read")).unwrap();
        assert_eq!(r, Value::Int(10));
        b.local_applied(e, Operation::unary("Write", 3)).unwrap();
        assert_eq!(b.current_state(x), Some(&Value::Int(3)));
        let (_, ey) = b.invoke(t, y, "m", []);
        b.local_applied(ey, Operation::unary("Add", 2)).unwrap();
        assert_eq!(b.current_state(y), Some(&Value::Int(2)));
        let h = b.build();
        assert_eq!(h.initial_state(x), Value::Int(10));
    }

    #[test]
    fn unknown_operation_is_an_error() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        assert!(b
            .local_applied(e, Operation::nullary("Frobnicate"))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "environment object has no variables")]
    fn environment_local_steps_rejected() {
        let (base, _, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let _ = b.local_applied(t, Operation::nullary("Read"));
    }

    #[test]
    fn overlapping_intervals_are_unordered() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t1 = b.begin_top_level("T1");
        let (_, e1) = b.invoke(t1, x, "m", []);
        let t2 = b.begin_top_level("T2");
        let (_, e2) = b.invoke(t2, x, "m", []);
        let s1 = b.local_with_interval(e1, Operation::unary("Write", 1), (), Interval::new(10, 20));
        let s2 = b.local_with_interval(e2, Operation::unary("Write", 2), (), Interval::new(15, 25));
        let h = b.build();
        assert!(h.unordered(s1, s2));
    }

    #[test]
    fn uncompleted_message_spans_subtree() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, x, "m", []);
        let (s, _) = b.local_applied(e, Operation::unary("Write", 1)).unwrap();
        // never call complete_invoke
        let h = b.build();
        assert!(h.interval(m).contains(&h.interval(s)));
        assert!(!h.precedes(m, s));
        assert!(!h.precedes(s, m));
    }

    #[test]
    fn abort_marks_execution_and_adds_step() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        let s = b.abort(e);
        let h = b.build();
        assert!(h.exec(e).aborted);
        assert!(h.step(s).is_abort());
        assert!(h.effectively_aborted(e));
        assert!(!h.effectively_aborted(t));
    }

    #[test]
    fn auto_program_order_can_be_disabled() {
        let (base, x, _) = base_xy();
        let mut b = HistoryBuilder::new(base);
        b.set_auto_program_order(false);
        let t = b.begin_top_level("T");
        let (_, e) = b.invoke(t, x, "m", []);
        let (s1, _) = b.local_applied(e, Operation::nullary("Read")).unwrap();
        let (s2, _) = b.local_applied(e, Operation::nullary("Read")).unwrap();
        let h = b.build();
        assert!(!h.exec(e).program_precedes(s1, s2));
    }
}
