//! # obase-core — the formal model of transaction synchronisation in object bases
//!
//! This crate implements the model, definitions and theorems of
//! *T. Hadzilacos & V. Hadzilacos, "Transaction Synchronisation in Object
//! Bases"* (PODS 1988; JCSS 43, 1991):
//!
//! * **Objects and object bases** (Definition 1): [`object::ObjectBase`],
//!   [`object::SemanticType`] — an object's variables, state and local
//!   operations.
//! * **Operations, local steps and message steps** (Definition 2):
//!   [`op::Operation`], [`op::LocalStep`], [`step::StepRecord`].
//! * **Commutativity and conflict** (Definition 3): declared per type and
//!   validated against the state-based ground truth by [`conflict`].
//! * **Method executions** (Definition 4): [`exec_tree::MethodExecution`].
//! * **Histories and legality** (Definitions 5–6): [`history::History`],
//!   [`builder::HistoryBuilder`], [`legality`].
//! * **Well-definedness** (Theorem 1): [`replay`].
//! * **Equivalence, serial and serialisable histories** (Definitions 7–8):
//!   [`equivalence`].
//! * **The serialisation graph and the Serialisability Theorem**
//!   (Definition 9, Theorem 2): [`sg`].
//! * **Per-object graphs and the intra-/inter-object separation**
//!   (Definition 10, Theorem 5): [`local_graphs`].
//! * **Abort semantics** (Section 3): [`aborts`].
//! * **Append-only history recording** for concurrent backends (per-worker
//!   event buffers stitched by a global sequence counter): [`record`].
//! * **The scheduler interface** used by the concurrency-control crates
//!   (`obase-lock`, `obase-tso`, `obase-occ`) and the execution engine
//!   (`obase-exec`): [`sched`].
//! * **The backend-agnostic lifecycle building blocks** shared by every
//!   execution backend — the execution registry, the abort/cascade
//!   resolution loop and the [`lifecycle::ExecutionDriver`] contract:
//!   [`lifecycle`].
//!
//! The crate is purely analytical: it represents and checks executions. The
//! machinery that *produces* executions (transaction programs, the
//! interleaving simulator, workloads) lives in the sibling crates.
//!
//! ## Quick example
//!
//! ```
//! use obase_core::prelude::*;
//! use std::sync::Arc;
//!
//! // An object base with a single read/write register.
//! let mut base = ObjectBase::new();
//! let x = base.add_object("x", Arc::new(obase_core::testutil::IntRegister));
//!
//! // Two user transactions writing the register one after the other.
//! let mut b = HistoryBuilder::new(Arc::new(base));
//! for (name, v) in [("T1", 1), ("T2", 2)] {
//!     let t = b.begin_top_level(name);
//!     let (m, e) = b.invoke(t, x, "set", []);
//!     b.local_applied(e, Operation::unary("Write", v)).unwrap();
//!     b.complete_invoke(m, Value::Unit);
//! }
//! let h = b.build();
//!
//! assert!(obase_core::legality::is_legal(&h));
//! assert!(obase_core::sg::certifies_serialisable(&h));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aborts;
pub mod builder;
pub mod conflict;
pub mod equivalence;
pub mod error;
pub mod exec_tree;
pub mod graph;
pub mod history;
pub mod ids;
pub mod legality;
pub mod lifecycle;
pub mod local_graphs;
pub mod object;
pub mod op;
pub mod record;
pub mod replay;
pub mod sched;
pub mod sg;
pub mod step;
pub mod testutil;
pub mod value;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::builder::HistoryBuilder;
    pub use crate::error::{LegalityError, TypeError};
    pub use crate::exec_tree::MethodExecution;
    pub use crate::history::{History, Interval};
    pub use crate::ids::{ExecId, ObjectId, StepId};
    pub use crate::object::{ObjectBase, ObjectSpec, SemanticType, TypeHandle};
    pub use crate::op::{LocalStep, Operation};
    pub use crate::sched::{AbortReason, Decision, Scheduler, TxnView};
    pub use crate::step::{StepKind, StepRecord};
    pub use crate::value::Value;
}

pub use prelude::*;
