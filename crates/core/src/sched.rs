//! The scheduler interface: the contract between the execution engine and a
//! concurrency-control algorithm.
//!
//! The paper's algorithms (N2PL in Section 5.1, NTO in Section 5.2, and
//! certifier-style inter-object schemes in Section 6) are all *online*: they
//! observe operations as transactions issue them and decide whether each
//! operation may proceed, must wait, or forces an abort. The
//! [`Scheduler`] trait captures that interaction. Implementations live in the
//! `obase-lock`, `obase-tso` and `obase-occ` crates; the engine in
//! `obase-exec` drives them and records the resulting history, which the core
//! theory (Theorems 2 and 5) then verifies.

use crate::ids::{ExecId, ObjectId};
use crate::object::TypeHandle;
use crate::op::{LocalStep, Operation};

/// Why a scheduler (or the engine) aborted a method execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The execution was chosen as a deadlock victim.
    Deadlock,
    /// A timestamp-ordering rule was violated (NTO rule 1).
    TimestampOrder,
    /// Commit-time certification failed (optimistic schemes).
    Certification,
    /// The workload itself requested an abort (e.g. insufficient funds).
    Application,
    /// The transaction observed state that a later abort physically undid
    /// (a dirty read), so it was cascade-aborted by the engine.
    CascadingDirtyRead,
    /// A scenario fault plan deliberately doomed the transaction (chaos
    /// injection); distinct from `Other` so injected faults are separable
    /// from organic aborts in the metrics histograms.
    Injected,
    /// The scheduler was consulted about an execution it never saw begin —
    /// an internal bookkeeping invariant was violated.
    NeverBegan,
    /// The transaction was in flight when the process crashed and was rolled
    /// back by write-ahead-log recovery (`obase-wal`); distinct from
    /// `Injected` so crash-test harnesses can tell recovery rollbacks from
    /// scheduler-doomed chaos in the metrics histograms.
    CrashRollback,
    /// Any other scheduler-specific reason.
    Other(String),
}

impl AbortReason {
    /// A stable snake_case key naming the variant, used to bucket abort
    /// histograms in metrics and bench output. Unlike [`Display`], every
    /// `Other(..)` reason maps to the single key `"other"` so histograms
    /// stay bounded.
    ///
    /// [`Display`]: std::fmt::Display
    pub fn key(&self) -> &'static str {
        match self {
            AbortReason::Deadlock => "deadlock",
            AbortReason::TimestampOrder => "timestamp_order",
            AbortReason::Certification => "certification",
            AbortReason::Application => "application",
            AbortReason::CascadingDirtyRead => "cascading_dirty_read",
            AbortReason::Injected => "injected",
            AbortReason::NeverBegan => "never_began",
            AbortReason::CrashRollback => "crash_rollback",
            AbortReason::Other(_) => "other",
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Deadlock => write!(f, "deadlock"),
            AbortReason::TimestampOrder => write!(f, "timestamp order violation"),
            AbortReason::Certification => write!(f, "certification failure"),
            AbortReason::Application => write!(f, "application abort"),
            AbortReason::CascadingDirtyRead => write!(f, "cascading dirty read"),
            AbortReason::Injected => write!(f, "injected fault"),
            AbortReason::NeverBegan => write!(f, "execution never began"),
            AbortReason::CrashRollback => write!(f, "rolled back during crash recovery"),
            AbortReason::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for AbortReason {}

/// A scheduler's decision about a requested action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The action may proceed.
    Grant,
    /// The action must wait; the requester is blocked behind the listed
    /// executions (used by the engine to build the waits-for graph for
    /// deadlock detection).
    Block {
        /// The executions currently preventing the action.
        waiting_for: Vec<ExecId>,
    },
    /// The requesting execution must abort.
    Abort(AbortReason),
}

impl Decision {
    /// Convenience constructor for a block decision.
    pub fn block(waiting_for: impl IntoIterator<Item = ExecId>) -> Self {
        Decision::Block {
            waiting_for: waiting_for.into_iter().collect(),
        }
    }

    /// Returns `true` if the decision is [`Decision::Grant`].
    pub fn is_grant(&self) -> bool {
        matches!(self, Decision::Grant)
    }

    /// Returns `true` if the decision is a block.
    pub fn is_block(&self) -> bool {
        matches!(self, Decision::Block { .. })
    }

    /// Returns `true` if the decision is an abort.
    pub fn is_abort(&self) -> bool {
        matches!(self, Decision::Abort(_))
    }
}

/// The engine-provided view of the transaction forest that schedulers may
/// consult when making decisions.
pub trait TxnView {
    /// The parent of a method execution, if any.
    fn parent(&self, e: ExecId) -> Option<ExecId>;

    /// The object whose method `e` executes ([`ObjectId::ENVIRONMENT`] for
    /// top-level transactions).
    fn object_of(&self, e: ExecId) -> ObjectId;

    /// Returns `true` if `anc` is an ancestor of `e` (including `anc == e`).
    fn is_ancestor(&self, anc: ExecId, e: ExecId) -> bool {
        let mut cur = e;
        loop {
            if cur == anc {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// The ancestors of `e`, starting with `e` itself.
    fn ancestors(&self, e: ExecId) -> Vec<ExecId> {
        let mut out = vec![e];
        let mut cur = e;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// The top-level ancestor of `e`.
    fn top_level_of(&self, e: ExecId) -> ExecId {
        *self.ancestors(e).last().expect("ancestors never empty")
    }

    /// The semantic type of an object.
    fn type_of(&self, o: ObjectId) -> TypeHandle;

    /// Returns `true` if the execution is still live (neither committed nor
    /// aborted).
    fn is_live(&self, e: ExecId) -> bool;
}

/// A concurrency-control algorithm, driven by the execution engine.
///
/// All methods take `&mut self`; a scheduler instance serves one engine run.
/// The default implementations make every hook a no-op that grants
/// everything, so simple schedulers only override what they need.
///
/// Schedulers must be [`Send`]: the parallel backend (`obase-par`) moves the
/// instance into a mutex shared by its worker threads. Exclusive access is
/// still guaranteed — every hook is invoked under that single lock — so
/// implementations need no internal synchronisation, just no thread-affine
/// state (`Rc`, raw pointers, ...).
pub trait Scheduler: Send {
    /// A short human-readable name ("N2PL(op)", "NTO(conservative)", ...)
    /// used in experiment output.
    fn name(&self) -> String;

    /// A new method execution has begun.
    fn on_begin(
        &mut self,
        _exec: ExecId,
        _parent: Option<ExecId>,
        _object: ObjectId,
        _view: &dyn TxnView,
    ) {
    }

    /// `exec` wants to send a message invoking a method of `target`.
    /// Flat (object-granularity) schedulers synchronise here.
    fn request_invoke(
        &mut self,
        _exec: ExecId,
        _target: ObjectId,
        _method: &str,
        _view: &dyn TxnView,
    ) -> Decision {
        Decision::Grant
    }

    /// `exec` wants to issue local operation `op` on `object`. Operation-level
    /// schedulers (conservative N2PL/NTO) synchronise here, before the
    /// operation's return value is known.
    fn request_local(
        &mut self,
        _exec: ExecId,
        _object: ObjectId,
        _op: &Operation,
        _view: &dyn TxnView,
    ) -> Decision {
        Decision::Grant
    }

    /// The engine has *provisionally* executed the operation and observed the
    /// resulting step (operation plus return value). Step-level schedulers
    /// (the second implementation style of Section 5.1/5.2) validate here;
    /// returning [`Decision::Block`] delays the installation of the step and
    /// the engine will provisionally re-execute it later.
    fn validate_step(
        &mut self,
        _exec: ExecId,
        _object: ObjectId,
        _step: &LocalStep,
        _view: &dyn TxnView,
    ) -> Decision {
        Decision::Grant
    }

    /// A step was definitively installed.
    fn on_step_installed(
        &mut self,
        _exec: ExecId,
        _object: ObjectId,
        _step: &LocalStep,
        _view: &dyn TxnView,
    ) {
    }

    /// The execution has finished its program and asks to commit. Certifier
    /// schedulers validate here; returning an abort decision turns the commit
    /// into an abort.
    fn certify_commit(&mut self, _exec: ExecId, _view: &dyn TxnView) -> Decision {
        Decision::Grant
    }

    /// The execution committed (for nested executions this is where N2PL
    /// passes locks to the parent).
    fn on_commit(&mut self, _exec: ExecId, _view: &dyn TxnView) {}

    /// The execution aborted (locks are released, timestamps forgotten, ...).
    fn on_abort(&mut self, _exec: ExecId, _view: &dyn TxnView) {}

    /// Returns a fresh, empty scheduler of the same configuration if this
    /// scheduler is *per-object decomposable* — the paper's per-object
    /// scheduler decomposition (each object synchronises independently),
    /// which the parallel backend exploits by running one instance per
    /// object shard behind its own lock.
    ///
    /// Returning `Some` promises all of the following, per instance:
    ///
    /// * decision state is keyed purely by object: the outcome of
    ///   [`request_invoke`], [`request_local`] and [`validate_step`] for an
    ///   object depends only on prior hooks *for that object* (plus the
    ///   immutable genealogy in the [`TxnView`] — `parent`, `object_of`,
    ///   `type_of`; `is_live` must not be relied on, as the decomposed view
    ///   may be slightly stale);
    /// * [`on_begin`] is delivered to every instance in execution-id order
    ///   (the backend guarantees this), and the scheduler derives any
    ///   per-execution state (e.g. NTO timestamps) deterministically from
    ///   that order — so all instances agree on it;
    /// * [`on_commit`] / [`on_abort`] / [`certify_commit`] tolerate being
    ///   delivered only to instances whose objects the execution's
    ///   transaction touched, and tolerate the per-instance delivery being
    ///   non-atomic across instances (a transaction's resources may be
    ///   released shard by shard).
    ///
    /// Schedulers with inherently global state (an inter-object
    /// serialisation graph, for instance) must return `None` (the default);
    /// the backend then runs the single instance behind one lock.
    ///
    /// [`request_invoke`]: Scheduler::request_invoke
    /// [`request_local`]: Scheduler::request_local
    /// [`validate_step`]: Scheduler::validate_step
    /// [`on_begin`]: Scheduler::on_begin
    /// [`on_commit`]: Scheduler::on_commit
    /// [`on_abort`]: Scheduler::on_abort
    /// [`certify_commit`]: Scheduler::certify_commit
    fn fork_object_shard(&self) -> Option<Box<dyn Scheduler>> {
        None
    }
}

/// A scheduler that grants everything. It performs no synchronisation at all
/// and therefore admits non-serialisable executions; it exists as the
/// baseline "no concurrency control" configuration for experiments and as a
/// negative control in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullScheduler;

impl Scheduler for NullScheduler {
    fn name(&self) -> String {
        "none".to_owned()
    }

    fn fork_object_shard(&self) -> Option<Box<dyn Scheduler>> {
        // Stateless, so trivially decomposable.
        Some(Box::new(NullScheduler))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StubView;
    impl TxnView for StubView {
        fn parent(&self, e: ExecId) -> Option<ExecId> {
            if e.0 == 0 {
                None
            } else {
                Some(ExecId(e.0 - 1))
            }
        }
        fn object_of(&self, _e: ExecId) -> ObjectId {
            ObjectId(0)
        }
        fn type_of(&self, _o: ObjectId) -> TypeHandle {
            std::sync::Arc::new(crate::testutil::IntRegister)
        }
        fn is_live(&self, _e: ExecId) -> bool {
            true
        }
    }

    #[test]
    fn view_default_genealogy() {
        let v = StubView;
        assert!(v.is_ancestor(ExecId(0), ExecId(3)));
        assert!(!v.is_ancestor(ExecId(3), ExecId(0)));
        assert_eq!(
            v.ancestors(ExecId(2)),
            vec![ExecId(2), ExecId(1), ExecId(0)]
        );
        assert_eq!(v.top_level_of(ExecId(2)), ExecId(0));
    }

    #[test]
    fn decision_helpers() {
        assert!(Decision::Grant.is_grant());
        assert!(Decision::block([ExecId(1)]).is_block());
        assert!(Decision::Abort(AbortReason::Deadlock).is_abort());
        assert_eq!(
            Decision::block([ExecId(1), ExecId(2)]),
            Decision::Block {
                waiting_for: vec![ExecId(1), ExecId(2)]
            }
        );
    }

    #[test]
    fn null_scheduler_grants_everything() {
        let mut s = NullScheduler;
        let v = StubView;
        assert_eq!(s.name(), "none");
        assert!(s
            .request_local(ExecId(0), ObjectId(0), &Operation::nullary("Read"), &v)
            .is_grant());
        assert!(s.request_invoke(ExecId(0), ObjectId(0), "m", &v).is_grant());
        assert!(s
            .validate_step(
                ExecId(0),
                ObjectId(0),
                &LocalStep::new(Operation::nullary("Read"), 0),
                &v
            )
            .is_grant());
        assert!(s.certify_commit(ExecId(0), &v).is_grant());
    }

    #[test]
    fn abort_reason_display() {
        assert_eq!(AbortReason::Deadlock.to_string(), "deadlock");
        assert_eq!(AbortReason::NeverBegan.to_string(), "execution never began");
        assert_eq!(
            AbortReason::CascadingDirtyRead.to_string(),
            "cascading dirty read"
        );
        assert_eq!(
            AbortReason::CrashRollback.to_string(),
            "rolled back during crash recovery"
        );
        assert_eq!(AbortReason::Other("custom".into()).to_string(), "custom");
    }

    #[test]
    fn abort_reason_keys_are_stable_and_bounded() {
        assert_eq!(AbortReason::Deadlock.key(), "deadlock");
        assert_eq!(AbortReason::TimestampOrder.key(), "timestamp_order");
        assert_eq!(
            AbortReason::CascadingDirtyRead.key(),
            "cascading_dirty_read"
        );
        assert_eq!(AbortReason::Injected.key(), "injected");
        assert_eq!(AbortReason::CrashRollback.key(), "crash_rollback");
        // Every free-form reason buckets to one key.
        assert_eq!(AbortReason::Other("deadline".into()).key(), "other");
        assert_eq!(AbortReason::Other("anything".into()).key(), "other");
    }

    #[test]
    fn abort_reason_is_a_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(AbortReason::Certification);
        assert_eq!(e.to_string(), "certification failure");
    }
}
