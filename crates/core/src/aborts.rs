//! Abort semantics (Section 3, "Transaction Failures").
//!
//! The model treats abortion as an "abnormal" termination condition: a method
//! execution may invoke the distinguished `Abort` operation as its last
//! operation, its parent observes the abortion through the message's return
//! value, and the usual semantics are
//!
//! * **(a)** an aborted method execution has no effect on the state of its
//!   object — formally, dropping the local steps of aborted executions from
//!   the per-object step sequence leaves a legal sequence with the same final
//!   state;
//! * **(b)** if a method execution aborts then so do all its descendents
//!   (abortion propagates *down*, never up: a parent may catch a child's
//!   failure and try an alternative).

use crate::error::LegalityError;
use crate::history::History;
use crate::ids::{ExecId, StepId};
use crate::replay;

/// Checks condition (b): every child of an aborted execution is itself
/// aborted.
pub fn check_abort_propagation(h: &History) -> Result<(), LegalityError> {
    for e in h.execs() {
        if !e.aborted {
            continue;
        }
        for &child in h.children_of(e.id) {
            if !h.exec(child).aborted {
                return Err(LegalityError::AbortNotPropagated {
                    parent: e.id,
                    child,
                });
            }
        }
    }
    Ok(())
}

/// Checks condition (a): for every object, the subsequence of its local steps
/// belonging to non-aborted executions is legal on the initial state and
/// produces the same final state as the full sequence.
pub fn check_abort_effects(h: &History) -> Result<(), LegalityError> {
    for o in h.objects_touched() {
        let full: Vec<StepId> = h.topo_local_steps(o);
        let committed: Vec<StepId> = full
            .iter()
            .copied()
            .filter(|&s| !h.effectively_aborted(h.exec_of_step(s)))
            .collect();
        // (i) the committed subsequence is legal on the initial state.
        replay::replay_order(h, o, &committed)?;
        // (ii) full and committed sequences agree on the final state.
        let full_state = replay::apply_order(h, o, &full);
        let committed_state = replay::apply_order(h, o, &committed);
        if full_state != committed_state {
            return Err(LegalityError::AbortedExecutionHasEffect { object: o });
        }
    }
    Ok(())
}

/// Checks both abort-semantics conditions.
pub fn check_abort_semantics(h: &History) -> Result<(), LegalityError> {
    check_abort_propagation(h)?;
    check_abort_effects(h)?;
    Ok(())
}

/// The executions that aborted directly (their own `aborted` flag is set).
pub fn aborted_execs(h: &History) -> Vec<ExecId> {
    h.execs()
        .iter()
        .filter(|e| e.aborted)
        .map(|e| e.id)
        .collect()
}

/// The executions that are effectively aborted (they or an ancestor aborted).
pub fn effectively_aborted_execs(h: &History) -> Vec<ExecId> {
    h.execs()
        .iter()
        .filter(|e| h.effectively_aborted(e.id))
        .map(|e| e.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::object::ObjectBase;
    use crate::op::Operation;
    use crate::testutil::{Counter, IntRegister};
    use crate::value::Value;
    use std::sync::Arc;

    #[test]
    fn abort_propagation_violation_detected() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, x, "m", []);
        let (m2, _e2) = b.invoke(e, x, "inner", []);
        b.complete_invoke(m2, Value::Unit);
        // Abort the parent but not the child.
        b.abort(e);
        b.complete_invoke(m, Value::Unit);
        let h = b.build();
        assert!(matches!(
            check_abort_propagation(&h),
            Err(LegalityError::AbortNotPropagated { .. })
        ));
    }

    #[test]
    fn aborted_write_with_effect_detected() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, x, "m", []);
        // The aborted execution writes 5, and nothing undoes it: the final
        // state with and without the aborted steps differs.
        b.local_applied(e, Operation::unary("Write", 5)).unwrap();
        b.abort(e);
        b.complete_invoke(m, Value::Unit);
        let h = b.build();
        assert!(check_abort_propagation(&h).is_ok());
        assert!(matches!(
            check_abort_effects(&h),
            Err(LegalityError::AbortedExecutionHasEffect { .. })
        ));
        assert!(check_abort_semantics(&h).is_err());
    }

    #[test]
    fn effect_free_abort_is_accepted() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, x, "m", []);
        // The aborted execution only read; it has no effect on the state.
        b.local_applied(e, Operation::nullary("Read")).unwrap();
        b.abort(e);
        b.complete_invoke(m, Value::Unit);
        // A second, committed transaction writes.
        let t2 = b.begin_top_level("T2");
        let (m2, e2) = b.invoke(t2, x, "m", []);
        b.local_applied(e2, Operation::unary("Write", 3)).unwrap();
        b.complete_invoke(m2, Value::Unit);
        let h = b.build();
        assert!(check_abort_semantics(&h).is_ok());
        assert_eq!(aborted_execs(&h), vec![e]);
        assert_eq!(effectively_aborted_execs(&h), vec![e]);
    }

    #[test]
    fn commuting_aborted_effects_can_cancel() {
        // A counter where the aborted execution's Add is compensated by an
        // equal-and-opposite Add in the same (aborted) execution: net effect
        // zero, so condition (a) holds even though the aborted execution
        // issued updates.
        let mut base = ObjectBase::new();
        let c = base.add_object("c", Arc::new(Counter));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, c, "m", []);
        b.local_applied(e, Operation::unary("Add", 4)).unwrap();
        b.local_applied(e, Operation::unary("Add", -4)).unwrap();
        b.abort(e);
        b.complete_invoke(m, Value::Unit);
        let h = b.build();
        assert!(check_abort_effects(&h).is_ok());
    }

    #[test]
    fn descendants_of_aborted_parent_are_effectively_aborted() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t = b.begin_top_level("T");
        let (m, e) = b.invoke(t, x, "m", []);
        let (m2, e2) = b.invoke(e, x, "inner", []);
        b.abort(e2);
        b.complete_invoke(m2, Value::Unit);
        b.abort(e);
        b.complete_invoke(m, Value::Unit);
        let h = b.build();
        assert!(check_abort_propagation(&h).is_ok());
        assert!(h.effectively_aborted(e2));
        assert!(h.effectively_aborted(e));
        assert!(!h.effectively_aborted(t));
        assert_eq!(effectively_aborted_execs(&h).len(), 2);
    }
}
