//! Steps of a history: local steps and message steps.
//!
//! Definition 2 distinguishes *local steps* — the execution of a local
//! operation together with its return value — from *message steps* — the
//! invocation of another object's method together with the value that the
//! invoked method eventually returned. The function `B` of a history maps
//! each message step to the method execution it created; here that mapping is
//! stored inline as the `child` field of the message step.

use crate::ids::{ExecId, ObjectId, StepId};
use crate::op::{LocalStep, Operation};
use crate::value::Value;
use std::fmt;

/// The payload of a step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// A local step `(a, v)` on the variables of the issuing execution's
    /// object.
    Local(LocalStep),
    /// A message step `(m, v)`: the invocation of `method` on `target`,
    /// which resulted in method execution `child` and returned `ret`.
    Message {
        /// The object whose method is invoked.
        target: ObjectId,
        /// The name of the invoked method.
        method: String,
        /// The arguments passed with the message.
        args: Vec<Value>,
        /// The method execution the message resulted in (`B(t)`).
        child: ExecId,
        /// The value returned to the sender when the child completed.
        ret: Value,
    },
}

/// One step of a history, tagged with its identity and the method execution
/// that issued it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// The step's identity within the history.
    pub id: StepId,
    /// The method execution this step belongs to.
    pub exec: ExecId,
    /// The step payload.
    pub kind: StepKind,
}

impl StepRecord {
    /// Returns `true` if this is a local step.
    pub fn is_local(&self) -> bool {
        matches!(self.kind, StepKind::Local(_))
    }

    /// Returns `true` if this is a message step.
    pub fn is_message(&self) -> bool {
        matches!(self.kind, StepKind::Message { .. })
    }

    /// Returns the local step payload, if this is a local step.
    pub fn as_local(&self) -> Option<&LocalStep> {
        match &self.kind {
            StepKind::Local(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the operation of a local step, if this is a local step.
    pub fn local_op(&self) -> Option<&Operation> {
        self.as_local().map(|l| &l.op)
    }

    /// Returns the child execution (`B(t)`), if this is a message step.
    pub fn message_child(&self) -> Option<ExecId> {
        match &self.kind {
            StepKind::Message { child, .. } => Some(*child),
            _ => None,
        }
    }

    /// Returns the target object, if this is a message step.
    pub fn message_target(&self) -> Option<ObjectId> {
        match &self.kind {
            StepKind::Message { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Returns `true` if this is a local abort step.
    pub fn is_abort(&self) -> bool {
        self.as_local().is_some_and(LocalStep::is_abort)
    }

    /// The return value recorded for this step (`ru(t)` in the paper).
    pub fn return_value(&self) -> &Value {
        match &self.kind {
            StepKind::Local(l) => &l.ret,
            StepKind::Message { ret, .. } => ret,
        }
    }
}

impl fmt::Display for StepRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            StepKind::Local(l) => write!(f, "{}[{}] {:?}", self.id, self.exec, l),
            StepKind::Message {
                target,
                method,
                args,
                child,
                ret,
            } => write!(
                f,
                "{}[{}] send {method}{args:?} to {target} -> {child} = {ret:?}",
                self.id, self.exec
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local(id: u32, exec: u32, name: &str, ret: i64) -> StepRecord {
        StepRecord {
            id: StepId(id),
            exec: ExecId(exec),
            kind: StepKind::Local(LocalStep::new(Operation::nullary(name), ret)),
        }
    }

    #[test]
    fn local_accessors() {
        let s = local(0, 1, "Read", 5);
        assert!(s.is_local());
        assert!(!s.is_message());
        assert!(!s.is_abort());
        assert_eq!(s.local_op().unwrap().name, "Read");
        assert_eq!(s.return_value(), &Value::Int(5));
        assert_eq!(s.message_child(), None);
        assert_eq!(s.message_target(), None);
    }

    #[test]
    fn message_accessors() {
        let s = StepRecord {
            id: StepId(3),
            exec: ExecId(0),
            kind: StepKind::Message {
                target: ObjectId(2),
                method: "Transfer".into(),
                args: vec![Value::Int(10)],
                child: ExecId(4),
                ret: Value::Bool(true),
            },
        };
        assert!(s.is_message());
        assert_eq!(s.message_child(), Some(ExecId(4)));
        assert_eq!(s.message_target(), Some(ObjectId(2)));
        assert_eq!(s.return_value(), &Value::Bool(true));
        assert!(s.as_local().is_none());
        let text = s.to_string();
        assert!(text.contains("Transfer"));
        assert!(text.contains("E4"));
    }

    #[test]
    fn abort_step_detected() {
        let s = StepRecord {
            id: StepId(0),
            exec: ExecId(0),
            kind: StepKind::Local(LocalStep::new(Operation::abort(), ())),
        };
        assert!(s.is_abort());
    }
}
