//! Histories: the representation of (possibly concurrent) executions in an
//! object base.
//!
//! A history (Definition 5) is a quadruple `h = (E, <, B, S)`:
//!
//! * `E` — the set of method executions ([`MethodExecution`]);
//! * `<` — a partial order on steps: `t < t'` means step `t` completed
//!   before `t'` was initiated;
//! * `B` — the calling pattern, mapping each message step to the method
//!   execution it created (stored inline in
//!   [`StepKind::Message`](crate::step::StepKind));
//! * `S` — one initial state per object.
//!
//! # Representation of `<`
//!
//! Because `t < t'` is defined as "`t` completed before `t'` was initiated",
//! the temporal order of any *actual* execution is an **interval order**: each
//! step occupies an interval of real time and `t < t'` iff `t`'s interval ends
//! strictly before `t'`'s begins. We therefore store one [`Interval`] per step
//! and derive `<` from the intervals, which makes precedence queries O(1) and
//! guarantees that `<` is a strict partial order by construction. Histories
//! whose `<` is not an interval order cannot be represented; they also cannot
//! arise from a real execution, so nothing of the paper's development is lost
//! (every theorem is stated for arbitrary legal histories and a fortiori holds
//! for interval-ordered ones).

use crate::exec_tree::MethodExecution;
use crate::ids::{ExecId, ObjectId, StepId};
use crate::object::ObjectBase;
use crate::step::{StepKind, StepRecord};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The span of (virtual) time occupied by a step: the step is initiated at
/// `start` and completed at `end` (`start <= end`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interval {
    /// Initiation time.
    pub start: u64,
    /// Completion time.
    pub end: u64,
}

impl Interval {
    /// Creates an interval; panics if `end < start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "interval end before start");
        Interval { start, end }
    }

    /// An instantaneous interval (used for local steps, which are atomic).
    pub fn instant(t: u64) -> Self {
        Interval { start: t, end: t }
    }

    /// Returns `true` if this interval is entirely before `other`
    /// (i.e. the step completed before `other` was initiated).
    pub fn before(&self, other: &Interval) -> bool {
        self.end < other.start
    }

    /// Returns `true` if this interval contains `other`.
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Returns `true` if the two intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.before(other) && !other.before(self)
    }
}

/// A history `h = (E, <, B, S)` over an [`ObjectBase`].
#[derive(Clone, Debug)]
pub struct History {
    base: Arc<ObjectBase>,
    initial_states: BTreeMap<ObjectId, Value>,
    execs: Vec<MethodExecution>,
    steps: Vec<StepRecord>,
    intervals: Vec<Interval>,
    children: Vec<Vec<ExecId>>,
}

impl History {
    /// Assembles a history from its components.
    ///
    /// This checks only *structural* consistency (ids are in range, the step
    /// lists of executions partition the steps, message children point back
    /// at their parent step). The legality conditions of Definition 6 are
    /// checked separately by [`crate::legality::check_legal`].
    ///
    /// # Panics
    /// Panics if the components are structurally inconsistent.
    pub fn new(
        base: Arc<ObjectBase>,
        initial_states: BTreeMap<ObjectId, Value>,
        execs: Vec<MethodExecution>,
        steps: Vec<StepRecord>,
        intervals: Vec<Interval>,
    ) -> Self {
        assert_eq!(steps.len(), intervals.len(), "one interval per step");
        for (i, e) in execs.iter().enumerate() {
            assert_eq!(e.id.index(), i, "execution ids must be dense");
        }
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.id.index(), i, "step ids must be dense");
            assert!(
                s.exec.index() < execs.len(),
                "step {i} references missing exec"
            );
        }
        let mut children: Vec<Vec<ExecId>> = vec![Vec::new(); execs.len()];
        for e in &execs {
            if let Some(p) = e.parent {
                assert!(p.index() < execs.len(), "parent of {:?} missing", e.id);
                children[p.index()].push(e.id);
            }
        }
        History {
            base,
            initial_states,
            execs,
            steps,
            intervals,
            children,
        }
    }

    /// The object base this history is over.
    pub fn base(&self) -> &Arc<ObjectBase> {
        &self.base
    }

    /// The `S` component: initial state of each object.
    pub fn initial_states(&self) -> &BTreeMap<ObjectId, Value> {
        &self.initial_states
    }

    /// The initial state of one object (falling back to the object base's
    /// default if the history does not override it).
    pub fn initial_state(&self, o: ObjectId) -> Value {
        self.initial_states
            .get(&o)
            .cloned()
            .or_else(|| self.base.get(o).map(|spec| spec.initial_state.clone()))
            .unwrap_or(Value::Unit)
    }

    /// All method executions, indexed densely by [`ExecId`].
    pub fn execs(&self) -> &[MethodExecution] {
        &self.execs
    }

    /// One method execution.
    pub fn exec(&self, id: ExecId) -> &MethodExecution {
        &self.execs[id.index()]
    }

    /// All steps, indexed densely by [`StepId`].
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// One step.
    pub fn step(&self, id: StepId) -> &StepRecord {
        &self.steps[id.index()]
    }

    /// The time interval occupied by a step.
    pub fn interval(&self, id: StepId) -> Interval {
        self.intervals[id.index()]
    }

    /// Number of steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of method executions.
    pub fn exec_count(&self) -> usize {
        self.execs.len()
    }

    /// The temporal order `<`: `a < b` iff step `a` completed before step `b`
    /// was initiated.
    pub fn precedes(&self, a: StepId, b: StepId) -> bool {
        a != b && self.interval(a).before(&self.interval(b))
    }

    /// Returns `true` if the two steps are unordered by `<`.
    pub fn unordered(&self, a: StepId, b: StepId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    // ----- genealogy of executions ---------------------------------------

    /// The children of an execution, i.e. the executions created by its
    /// message steps.
    pub fn children_of(&self, e: ExecId) -> &[ExecId] {
        &self.children[e.index()]
    }

    /// The parent of an execution, if any.
    pub fn parent_of(&self, e: ExecId) -> Option<ExecId> {
        self.exec(e).parent
    }

    /// The ancestors of `e`, starting with `e` itself and ending with its
    /// top-level ancestor ("a method execution is an ancestor of itself").
    pub fn ancestors_of(&self, e: ExecId) -> Vec<ExecId> {
        let mut out = vec![e];
        let mut cur = e;
        while let Some(p) = self.exec(cur).parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Returns `true` if `anc` is an ancestor of `e` (including `anc == e`).
    pub fn is_ancestor(&self, anc: ExecId, e: ExecId) -> bool {
        let mut cur = e;
        loop {
            if cur == anc {
                return true;
            }
            match self.exec(cur).parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Returns `true` if `e` is a descendent of `anc` (including `e == anc`).
    pub fn is_descendant(&self, e: ExecId, anc: ExecId) -> bool {
        self.is_ancestor(anc, e)
    }

    /// Returns `true` if neither execution is a descendent of the other.
    pub fn incomparable(&self, a: ExecId, b: ExecId) -> bool {
        !self.is_ancestor(a, b) && !self.is_ancestor(b, a)
    }

    /// The nesting level of an execution: top-level executions are at level 0.
    pub fn level_of(&self, e: ExecId) -> usize {
        self.ancestors_of(e).len() - 1
    }

    /// The top-level ancestor of an execution.
    pub fn top_level_of(&self, e: ExecId) -> ExecId {
        *self.ancestors_of(e).last().expect("ancestors never empty")
    }

    /// The least common ancestor of two executions, if one exists.
    pub fn lca(&self, a: ExecId, b: ExecId) -> Option<ExecId> {
        let anc_a: Vec<ExecId> = self.ancestors_of(a);
        let set: std::collections::HashSet<ExecId> = anc_a.iter().copied().collect();
        self.ancestors_of(b)
            .into_iter()
            .find(|anc| set.contains(anc))
    }

    /// The least common ancestor of a set of executions, if one exists.
    pub fn lca_many(&self, execs: &[ExecId]) -> Option<ExecId> {
        let mut it = execs.iter();
        let mut acc = *it.next()?;
        for &e in it {
            acc = self.lca(acc, e)?;
        }
        Some(acc)
    }

    /// All top-level (user) transactions.
    pub fn top_level_execs(&self) -> Vec<ExecId> {
        self.execs
            .iter()
            .filter(|e| e.is_top_level())
            .map(|e| e.id)
            .collect()
    }

    /// All executions in the subtree rooted at `e` (including `e`), in
    /// pre-order.
    pub fn subtree_execs(&self, e: ExecId) -> Vec<ExecId> {
        let mut out = Vec::new();
        let mut stack = vec![e];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            for &c in self.children_of(cur) {
                stack.push(c);
            }
        }
        out
    }

    /// All *local* steps issued by executions in the subtree rooted at `e`.
    pub fn subtree_local_steps(&self, e: ExecId) -> Vec<StepId> {
        let mut out = Vec::new();
        for sub in self.subtree_execs(e) {
            for &s in &self.exec(sub).steps {
                if self.step(s).is_local() {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Returns `true` if the execution or any of its ancestors aborted.
    pub fn effectively_aborted(&self, e: ExecId) -> bool {
        self.ancestors_of(e).iter().any(|&a| self.exec(a).aborted)
    }

    // ----- genealogy of steps ---------------------------------------------

    /// The execution a step belongs to.
    pub fn exec_of_step(&self, s: StepId) -> ExecId {
        self.step(s).exec
    }

    /// The object a *local* step operates on (the object of its execution).
    pub fn object_of_step(&self, s: StepId) -> ObjectId {
        self.exec(self.step(s).exec).object
    }

    /// The chain of ancestor steps of `s`: `s` itself, then the message step
    /// that created `s`'s execution, and so on up to a top-level execution's
    /// step. ("A step `t'` is a child of `t` if `t'` belongs to `B(t)`.")
    pub fn step_ancestors(&self, s: StepId) -> Vec<StepId> {
        let mut out = vec![s];
        let mut exec = self.step(s).exec;
        while let Some(ps) = self.exec(exec).parent_step {
            out.push(ps);
            exec = self.step(ps).exec;
        }
        out
    }

    /// The ancestor step of (the steps of) execution `target` within
    /// execution `within`: the message step of `within` whose subtree
    /// contains `target`. Returns `None` if `within` is not a proper
    /// ancestor of `target`.
    pub fn ancestor_step_in(&self, target: ExecId, within: ExecId) -> Option<StepId> {
        let mut cur = target;
        loop {
            let parent = self.exec(cur).parent?;
            let pstep = self.exec(cur).parent_step?;
            if parent == within {
                return Some(pstep);
            }
            cur = parent;
        }
    }

    // ----- per-object views -----------------------------------------------

    /// All local steps of object `o` in this history.
    pub fn local_steps_of_object(&self, o: ObjectId) -> Vec<StepId> {
        self.steps
            .iter()
            .filter(|s| s.is_local() && self.object_of_step(s.id) == o)
            .map(|s| s.id)
            .collect()
    }

    /// All method executions of object `o` in this history (nodes of the
    /// per-object graphs of Definition 10).
    pub fn execs_of_object(&self, o: ObjectId) -> Vec<ExecId> {
        self.execs
            .iter()
            .filter(|e| e.object == o)
            .map(|e| e.id)
            .collect()
    }

    /// The objects touched by local steps of this history.
    pub fn objects_touched(&self) -> Vec<ObjectId> {
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.steps {
            if s.is_local() {
                seen.insert(self.object_of_step(s.id));
            }
        }
        seen.into_iter().collect()
    }

    /// A topological sort of the local steps of object `o` consistent with
    /// `<`. Because `<` is derived from intervals, sorting by initiation time
    /// (ties broken by step id) is such a sort.
    pub fn topo_local_steps(&self, o: ObjectId) -> Vec<StepId> {
        let mut steps = self.local_steps_of_object(o);
        steps.sort_by_key(|&s| (self.interval(s).start, s));
        steps
    }

    /// Whether two local steps of the same object conflict, in the
    /// directional sense of Definition 3 (`a` conflicts with `b`).
    ///
    /// Steps of different objects, message steps and abort steps never
    /// conflict.
    pub fn steps_conflict(&self, a: StepId, b: StepId) -> bool {
        let (sa, sb) = (self.step(a), self.step(b));
        let (Some(la), Some(lb)) = (sa.as_local(), sb.as_local()) else {
            return false;
        };
        if la.is_abort() || lb.is_abort() {
            return false;
        }
        let oa = self.object_of_step(a);
        let ob = self.object_of_step(b);
        if oa != ob || oa.is_environment() {
            return false;
        }
        let ty = self.base.type_of(oa);
        ty.steps_conflict(la, lb)
    }

    /// Largest completion time of any step (0 for an empty history). Useful
    /// when appending to or re-laying-out histories.
    pub fn max_time(&self) -> u64 {
        self.intervals.iter().map(|i| i.end).max().unwrap_or(0)
    }

    /// Returns a copy of this history with the same executions and steps but
    /// different step intervals. Used by the serialisation-graph machinery to
    /// build equivalent serial histories (Theorem 2) and by the brute-force
    /// serialisability oracle.
    pub fn with_intervals(&self, intervals: Vec<Interval>) -> History {
        assert_eq!(intervals.len(), self.steps.len());
        History {
            base: Arc::clone(&self.base),
            initial_states: self.initial_states.clone(),
            execs: self.execs.clone(),
            steps: self.steps.clone(),
            intervals,
            children: self.children.clone(),
        }
    }

    /// Returns the projection of this history onto the executions for which
    /// `keep` returns `true` (together with all their steps). Message steps
    /// whose child execution is dropped are dropped as well.
    ///
    /// The main use is `committed_projection`-style filtering of aborted
    /// executions before serialisability analysis.
    pub fn project(&self, mut keep: impl FnMut(&MethodExecution) -> bool) -> History {
        let keep_flags: Vec<bool> = self.execs.iter().map(&mut keep).collect();
        // An execution can only be kept if all its ancestors are kept.
        let mut kept = vec![false; self.execs.len()];
        for e in &self.execs {
            let all_anc = self
                .ancestors_of(e.id)
                .iter()
                .all(|a| keep_flags[a.index()]);
            kept[e.id.index()] = all_anc;
        }
        let mut exec_map: Vec<Option<ExecId>> = vec![None; self.execs.len()];
        let mut new_execs: Vec<MethodExecution> = Vec::new();
        for e in &self.execs {
            if kept[e.id.index()] {
                let new_id = ExecId(new_execs.len() as u32);
                exec_map[e.id.index()] = Some(new_id);
                let mut ne = e.clone();
                ne.id = new_id;
                new_execs.push(ne);
            }
        }
        let mut step_map: Vec<Option<StepId>> = vec![None; self.steps.len()];
        let mut new_steps: Vec<StepRecord> = Vec::new();
        let mut new_intervals: Vec<Interval> = Vec::new();
        for s in &self.steps {
            if !kept[s.exec.index()] {
                continue;
            }
            if let StepKind::Message { child, .. } = &s.kind {
                if !kept[child.index()] {
                    continue;
                }
            }
            let new_id = StepId(new_steps.len() as u32);
            step_map[s.id.index()] = Some(new_id);
            let mut ns = s.clone();
            ns.id = new_id;
            ns.exec = exec_map[s.exec.index()].expect("kept step in kept exec");
            if let StepKind::Message { child, .. } = &mut ns.kind {
                *child = exec_map[child.index()].expect("kept child");
            }
            new_steps.push(ns);
            new_intervals.push(self.intervals[s.id.index()]);
        }
        for e in &mut new_execs {
            e.parent = e.parent.and_then(|p| exec_map[p.index()]);
            e.parent_step = e.parent_step.and_then(|s| step_map[s.index()]);
            e.steps = e.steps.iter().filter_map(|s| step_map[s.index()]).collect();
            e.program_order = e
                .program_order
                .iter()
                .filter_map(|(a, b)| Some((step_map[a.index()]?, step_map[b.index()]?)))
                .collect();
        }
        History::new(
            Arc::clone(&self.base),
            self.initial_states.clone(),
            new_execs,
            new_steps,
            new_intervals,
        )
    }

    /// The projection of this history onto executions that did not
    /// (effectively) abort. This is the history whose serialisability the
    /// concurrency-control algorithms must guarantee.
    pub fn committed_projection(&self) -> History {
        let aborted: Vec<bool> = self
            .execs
            .iter()
            .map(|e| self.effectively_aborted(e.id))
            .collect();
        self.project(|e| !aborted[e.id.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::op::Operation;
    use crate::testutil::IntRegister;

    fn tiny_history() -> History {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let y = base.add_object("y", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t1 = b.begin_top_level("T1");
        let (m1, e1) = b.invoke(t1, x, "m", []);
        b.local_applied(e1, Operation::unary("Write", 1)).unwrap();
        b.complete_invoke(m1, Value::Unit);
        let (m2, e2) = b.invoke(t1, y, "m", []);
        b.local_applied(e2, Operation::nullary("Read")).unwrap();
        b.complete_invoke(m2, Value::Int(0));
        b.build()
    }

    #[test]
    fn interval_relations() {
        let a = Interval::new(0, 2);
        let b = Interval::new(3, 5);
        let c = Interval::new(1, 4);
        assert!(a.before(&b));
        assert!(!b.before(&a));
        assert!(!a.before(&c));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(Interval::new(0, 10).contains(&c));
        assert!(!c.contains(&Interval::new(0, 10)));
        assert_eq!(Interval::instant(4), Interval::new(4, 4));
    }

    #[test]
    #[should_panic(expected = "interval end before start")]
    fn bad_interval_panics() {
        Interval::new(3, 1);
    }

    #[test]
    fn genealogy() {
        let h = tiny_history();
        let top = h.top_level_execs();
        assert_eq!(top.len(), 1);
        let t1 = top[0];
        let kids = h.children_of(t1);
        assert_eq!(kids.len(), 2);
        let e1 = kids[0];
        assert!(h.is_ancestor(t1, e1));
        assert!(!h.is_ancestor(e1, t1));
        assert!(h.incomparable(kids[0], kids[1]));
        assert_eq!(h.lca(kids[0], kids[1]), Some(t1));
        assert_eq!(h.level_of(t1), 0);
        assert_eq!(h.level_of(e1), 1);
        assert_eq!(h.top_level_of(e1), t1);
        assert_eq!(h.parent_of(e1), Some(t1));
        assert_eq!(h.subtree_execs(t1).len(), 3);
    }

    #[test]
    fn per_object_views() {
        let h = tiny_history();
        let x = h.base().by_name("x").unwrap().id;
        let y = h.base().by_name("y").unwrap().id;
        assert_eq!(h.local_steps_of_object(x).len(), 1);
        assert_eq!(h.local_steps_of_object(y).len(), 1);
        assert_eq!(h.objects_touched(), vec![x, y]);
        assert_eq!(h.execs_of_object(x).len(), 1);
        // Environment execs:
        assert_eq!(h.execs_of_object(ObjectId::ENVIRONMENT).len(), 1);
    }

    #[test]
    fn precedence_from_intervals() {
        let h = tiny_history();
        let x = h.base().by_name("x").unwrap().id;
        let y = h.base().by_name("y").unwrap().id;
        let sx = h.local_steps_of_object(x)[0];
        let sy = h.local_steps_of_object(y)[0];
        // The write to x happened (and its invoke completed) before the read
        // of y was initiated.
        assert!(h.precedes(sx, sy));
        assert!(!h.precedes(sy, sx));
        assert!(!h.precedes(sx, sx));
        assert!(!h.unordered(sx, sy));
    }

    #[test]
    fn step_ancestors_chain() {
        let h = tiny_history();
        let x = h.base().by_name("x").unwrap().id;
        let sx = h.local_steps_of_object(x)[0];
        let chain = h.step_ancestors(sx);
        // local step, then the message step in the top-level transaction.
        assert_eq!(chain.len(), 2);
        assert!(h.step(chain[1]).is_message());
        let t1 = h.top_level_execs()[0];
        let e1 = h.exec_of_step(sx);
        assert_eq!(h.ancestor_step_in(e1, t1), Some(chain[1]));
        assert_eq!(h.ancestor_step_in(t1, e1), None);
    }

    #[test]
    fn committed_projection_drops_aborted_subtrees() {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(IntRegister));
        let mut b = HistoryBuilder::new(Arc::new(base));
        let t1 = b.begin_top_level("T1");
        let (m1, e1) = b.invoke(t1, x, "m", []);
        b.local_applied(e1, Operation::unary("Write", 1)).unwrap();
        b.abort(e1);
        b.complete_invoke(m1, Value::Unit);
        let t2 = b.begin_top_level("T2");
        let (m2, e2) = b.invoke(t2, x, "m", []);
        b.local_applied(e2, Operation::unary("Write", 2)).unwrap();
        b.complete_invoke(m2, Value::Unit);
        let h = b.build();
        assert_eq!(h.exec_count(), 4);
        assert!(h.effectively_aborted(e1));
        assert!(!h.effectively_aborted(e2));
        let proj = h.committed_projection();
        // t1 survives (it did not abort) but loses its aborted child and the
        // message step pointing at it.
        assert_eq!(proj.exec_count(), 3);
        assert_eq!(proj.steps().iter().filter(|s| s.is_message()).count(), 1);
        assert_eq!(proj.objects_touched().len(), 1);
    }

    #[test]
    fn with_intervals_relayouts() {
        let h = tiny_history();
        let n = h.step_count();
        let new_intervals: Vec<Interval> = (0..n as u64).map(Interval::instant).collect();
        let h2 = h.with_intervals(new_intervals);
        assert_eq!(h2.step_count(), n);
        assert_eq!(h2.max_time(), n as u64 - 1);
    }
}
