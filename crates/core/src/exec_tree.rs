//! Method executions and their genealogical structure.
//!
//! A method execution (Definition 4) is a partially ordered set of steps
//! `(T, ⊲)` where `⊲` is derived from the algorithmic structure of the
//! method's implementation. The calling pattern `B` of a history induces a
//! forest over executions; the genealogical vocabulary of the paper (child,
//! descendent, ancestor, incomparable, least common ancestor) is implemented
//! here on top of that forest.

use crate::ids::{ExecId, ObjectId, StepId};

/// One method execution (transaction) of a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodExecution {
    /// The execution's identity.
    pub id: ExecId,
    /// The object whose method this is. Top-level executions belong to
    /// [`ObjectId::ENVIRONMENT`].
    pub object: ObjectId,
    /// The name of the method being executed.
    pub method: String,
    /// The parent execution, if any (`None` exactly for top-level
    /// executions).
    pub parent: Option<ExecId>,
    /// The message step of the parent that invoked this execution (`B⁻¹`),
    /// if any.
    pub parent_step: Option<StepId>,
    /// The steps of this execution, in issue order.
    pub steps: Vec<StepId>,
    /// The program order `⊲`: pairs `(t, t')` of this execution's steps with
    /// `t ⊲ t'`. Only the generating edges need to be stored; the relation is
    /// interpreted transitively.
    pub program_order: Vec<(StepId, StepId)>,
    /// Whether this execution terminated with an abort.
    pub aborted: bool,
}

impl MethodExecution {
    /// Returns `true` if this is a top-level (user) transaction, i.e. a
    /// method execution of the environment with no parent.
    pub fn is_top_level(&self) -> bool {
        self.parent.is_none()
    }

    /// Returns `true` if the program order declares `a ⊲ b` directly or
    /// transitively.
    pub fn program_precedes(&self, a: StepId, b: StepId) -> bool {
        if a == b {
            return false;
        }
        // Simple DFS over the (small) set of program-order edges.
        let mut stack = vec![a];
        let mut seen = vec![false; self.steps.len().max(1)];
        let index_of = |s: StepId| self.steps.iter().position(|&t| t == s);
        while let Some(cur) = stack.pop() {
            for &(x, y) in &self.program_order {
                if x == cur {
                    if y == b {
                        return true;
                    }
                    if let Some(i) = index_of(y) {
                        if !seen[i] {
                            seen[i] = true;
                            stack.push(y);
                        }
                    } else {
                        stack.push(y);
                    }
                }
            }
        }
        false
    }

    /// Returns the steps of this execution that are `⊲`-maximal (no later
    /// step in program order). Useful for builders appending sequential
    /// steps.
    pub fn program_maximal_steps(&self) -> Vec<StepId> {
        self.steps
            .iter()
            .copied()
            .filter(|&s| !self.program_order.iter().any(|&(a, _)| a == s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec_with_chain() -> MethodExecution {
        MethodExecution {
            id: ExecId(0),
            object: ObjectId(0),
            method: "m".into(),
            parent: None,
            parent_step: None,
            steps: vec![StepId(0), StepId(1), StepId(2), StepId(3)],
            program_order: vec![
                (StepId(0), StepId(1)),
                (StepId(1), StepId(2)),
                // StepId(3) is parallel to the chain.
            ],
            aborted: false,
        }
    }

    #[test]
    fn program_precedes_is_transitive() {
        let e = exec_with_chain();
        assert!(e.program_precedes(StepId(0), StepId(1)));
        assert!(e.program_precedes(StepId(0), StepId(2)));
        assert!(!e.program_precedes(StepId(2), StepId(0)));
        assert!(!e.program_precedes(StepId(0), StepId(3)));
        assert!(!e.program_precedes(StepId(1), StepId(1)));
    }

    #[test]
    fn maximal_steps() {
        let e = exec_with_chain();
        let max = e.program_maximal_steps();
        assert!(max.contains(&StepId(2)));
        assert!(max.contains(&StepId(3)));
        assert!(!max.contains(&StepId(0)));
    }

    #[test]
    fn top_level_detection() {
        let mut e = exec_with_chain();
        assert!(e.is_top_level());
        e.parent = Some(ExecId(9));
        assert!(!e.is_top_level());
    }
}
