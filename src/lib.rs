//! # obase — transaction synchronisation in object bases
//!
//! A Rust reproduction of *T. Hadzilacos & V. Hadzilacos, "Transaction
//! Synchronisation in Object Bases"* (PODS 1988; JCSS 43, 1991): a formal
//! model of nested transactions over objects with semantic (commutativity
//! based) conflicts, the generalised serialisability theorem and its
//! per-object refinement, and executable concurrency-control algorithms —
//! nested two-phase locking, nested timestamp ordering, flat baselines and an
//! optimistic inter-object certifier — driven by a deterministic interleaving
//! simulator with workload generators and an experiment harness.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`core`] — the formal model (histories, conflicts, serialisation
//!   graphs, Theorems 1, 2 and 5);
//! * [`adt`] — semantic object types (registers, counters, accounts, sets,
//!   dictionaries, FIFO queues, a from-scratch B-tree);
//! * [`lock`] — nested two-phase locking and the flat Gemstone-style
//!   baseline;
//! * [`tso`] — nested timestamp ordering (conservative and provisional);
//! * [`occ`] — the optimistic serialisation-graph certifier;
//! * [`exec`] — transaction programs, the interleaving engine and the mixed
//!   per-object scheduler;
//! * [`workload`] — seeded workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use obase::prelude::*;
//!
//! // Generate a small banking workload and run it under nested 2PL.
//! let wl = obase::workload::banking(&obase::workload::BankingParams {
//!     accounts: 4,
//!     transactions: 8,
//!     ..Default::default()
//! });
//! let mut scheduler = N2plScheduler::operation_locks();
//! let result = run(&wl, &mut scheduler, &EngineConfig::default());
//!
//! assert_eq!(result.metrics.committed, 8);
//! // Every history a correct scheduler admits has an acyclic serialisation
//! // graph (Theorem 2) and is therefore serialisable.
//! assert!(obase::core::sg::certifies_serialisable(&result.history));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use obase_adt as adt;
pub use obase_core as core;
pub use obase_exec as exec;
pub use obase_lock as lock;
pub use obase_occ as occ;
pub use obase_tso as tso;
pub use obase_workload as workload;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use obase_core::prelude::*;
    pub use obase_exec::{run, EngineConfig, MethodDef, Program, RunResult, TxnSpec, WorkloadSpec};
    pub use obase_lock::{FlatObjectScheduler, N2plScheduler};
    pub use obase_occ::SgtCertifier;
    pub use obase_tso::NtoScheduler;
}
