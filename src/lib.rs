//! # obase — transaction synchronisation in object bases
//!
//! A Rust reproduction of *T. Hadzilacos & V. Hadzilacos, "Transaction
//! Synchronisation in Object Bases"* (PODS 1988; JCSS 43, 1991): a formal
//! model of nested transactions over objects with semantic (commutativity
//! based) conflicts, the generalised serialisability theorem and its
//! per-object refinement, and executable concurrency-control algorithms —
//! nested two-phase locking, nested timestamp ordering, flat baselines and an
//! optimistic inter-object certifier — driven by a deterministic interleaving
//! simulator with workload generators and an experiment harness.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`runtime`] — the unified entry point: declarative [`SchedulerSpec`]s,
//!   the fluent [`Runtime`] builder and verified [`RunReport`]s;
//! * [`core`] — the formal model (histories, conflicts, serialisation
//!   graphs, Theorems 1, 2 and 5);
//! * [`adt`] — semantic object types (registers, counters, accounts, sets,
//!   dictionaries, FIFO queues, a from-scratch B-tree);
//! * [`lock`] — nested two-phase locking and the flat Gemstone-style
//!   baseline;
//! * [`tso`] — nested timestamp ordering (conservative and provisional);
//! * [`occ`] — the optimistic serialisation-graph certifier;
//! * [`exec`] — transaction programs, the interleaving engine and the mixed
//!   per-object scheduler;
//! * [`par`] — the multi-threaded wall-clock backend (worker pool, sharded
//!   object store, real blocking), selected with
//!   [`ExecutionBackend::Parallel`];
//! * [`wal`] — the durable write-ahead-logged backend (append-only checksummed
//!   log, group commit, crash recovery held to the same oracle), selected
//!   with [`ExecutionBackend::Durable`];
//! * [`obs`] — the observability layer: lifecycle tracing across all three
//!   backends, per-phase latency histograms, blocked-time attribution and
//!   Chrome/Perfetto trace export, switched on with
//!   [`Observe`](obase_runtime::Observe) on the [`Runtime`] builder;
//! * [`workload`] — seeded workload generators;
//! * [`scenario`] — the declarative scenario engine: a JSON workload DSL
//!   (client mixes, key distributions, nesting shapes over every ADT) plus
//!   seeded fault/chaos injection, with a library of named scenarios the
//!   backend-equivalence oracle sweeps;
//! * [`fuzz`] — the differential scenario fuzzer: a seeded generator over
//!   the whole scenario space, a sim/par/WAL cross-checking executor held
//!   to the serialisability oracle, an auto-shrinker, and the `bugbase/`
//!   corpus of minimal reproducers replayed forever in CI;
//! * [`serve`] — the TCP front end: a length-prefixed JSON protocol over
//!   real sockets, bounded admission with typed backpressure, ingress
//!   batching onto the parallel backend, live desired-state reconcile of
//!   scheduler and worker pool, and a wire status endpoint — with the
//!   merged history of everything admitted held to the same oracle.
//!
//! ## Quickstart
//!
//! Schedulers are *data*: pick one with a [`SchedulerSpec`], build a
//! [`Runtime`], and get back a [`RunReport`] carrying the committed history,
//! the metrics and the paper's theory checks.
//!
//! ```
//! use obase::prelude::*;
//!
//! // Generate a small banking workload and run it under nested 2PL.
//! let wl = obase::workload::banking(&obase::workload::BankingParams {
//!     accounts: 4,
//!     transactions: 8,
//!     ..Default::default()
//! });
//! let report = Runtime::builder()
//!     .scheduler(SchedulerSpec::n2pl_operation())
//!     .clients(4)
//!     .seed(7)
//!     .verify(Verify::Full)
//!     .build()?
//!     .run(&wl)?;
//!
//! assert_eq!(report.metrics.committed, 8);
//! // Every history a correct scheduler admits is legal, has an acyclic
//! // serialisation graph (Theorem 2) and satisfies the per-object condition
//! // (Theorem 5) — one call checks all three.
//! report.assert_serialisable();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Scheduler face-offs compare every algorithm on one workload:
//!
//! ```
//! use obase::prelude::*;
//!
//! let wl = obase::workload::counters(&Default::default());
//! let faceoff = Runtime::faceoff(&wl, &SchedulerSpec::all_basic())?;
//! faceoff.assert_all_serialisable();
//! println!("{}", faceoff.render_table());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use obase_adt as adt;
pub use obase_core as core;
pub use obase_exec as exec;
pub use obase_fuzz as fuzz;
pub use obase_lock as lock;
pub use obase_obs as obs;
pub use obase_occ as occ;
pub use obase_par as par;
pub use obase_runtime as runtime;
pub use obase_scenario as scenario;
pub use obase_serve as serve;
pub use obase_tso as tso;
pub use obase_wal as wal;
pub use obase_workload as workload;

#[doc(inline)]
pub use obase_runtime::{ExecutionBackend, RunReport, Runtime, SchedulerSpec, Verify};

/// Commonly used items across the workspace.
///
/// Concrete scheduler types are intentionally *not* exported here: choose
/// algorithms declaratively through [`SchedulerSpec`] and the
/// [`Runtime`] builder (see the crate-level quickstart).
pub mod prelude {
    pub use obase_core::prelude::*;
    pub use obase_exec::{
        Expr, MethodDef, ObjectBaseDef, Program, RunMetrics, TxnSpec, WorkloadSpec,
    };
    pub use obase_runtime::{
        ConfigError, ExecutionBackend, Faceoff, FlatMode, LockGranularity, NtoStyle, Observe,
        RunReport, Runtime, RuntimeBuilder, RuntimeError, SchedulerRegistry, SchedulerSpec,
        TheoryChecks, TheoryViolation, Verify,
    };
}
