//! The paper's Section 5.1 queue example: step-level (return-value-aware)
//! locks admit more concurrency than operation-level locks.
//!
//! "In many reasonable representations of queues, an Enqueue conflicts with a
//! Dequeue only if the latter returns the item placed into the queue by the
//! former."
//!
//! Run with `cargo run --example queue_semantics`.

use obase::prelude::*;
use obase::workload::{queues, QueueParams};

fn run_with(spec: SchedulerSpec, preload: usize) -> Result<RunReport, RuntimeError> {
    let wl = queues(&QueueParams {
        queues: 1,
        producers: 12,
        consumers: 12,
        preload,
        seed: 17,
    });
    let report = Runtime::builder()
        .scheduler(spec)
        .clients(6)
        .seed(17)
        .build()
        .map_err(RuntimeError::Config)?
        .run(&wl)?;
    report.assert_serialisable();
    println!(
        "{:<22} preload={preload:<3} committed={:<3} blocked={:<4} rounds={:<5} throughput={:.3}",
        report.scheduler,
        report.metrics.committed,
        report.metrics.blocked_events,
        report.metrics.rounds,
        report.throughput()
    );
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Producer/consumer queue, 12 producers + 12 consumers, 6 clients\n");
    for preload in [0, 4, 16, 64] {
        let op = run_with(SchedulerSpec::n2pl_operation(), preload)?;
        let step = run_with(SchedulerSpec::n2pl_step(), preload)?;
        let speedup = step.throughput() / op.throughput().max(f64::EPSILON);
        println!(
            "  -> step-level locking throughput advantage: {speedup:.2}x (blocking {} vs {})\n",
            step.metrics.blocked_events, op.metrics.blocked_events
        );
    }
    println!(
        "With items already in the queue, a Dequeue returns an item that no\n\
         concurrent Enqueue produced, so step-level locks let producers and\n\
         consumers run in parallel while operation-level locks serialise them."
    );
    Ok(())
}
