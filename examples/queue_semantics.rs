//! The paper's Section 5.1 queue example: step-level (return-value-aware)
//! locks admit more concurrency than operation-level locks.
//!
//! "In many reasonable representations of queues, an Enqueue conflicts with a
//! Dequeue only if the latter returns the item placed into the queue by the
//! former."
//!
//! Run with `cargo run --example queue_semantics`.

use obase::prelude::*;
use obase::workload::{queues, QueueParams};

fn run_with(scheduler_name: &str, step_locks: bool, preload: usize) -> obase::exec::RunMetrics {
    let wl = queues(&QueueParams {
        queues: 1,
        producers: 12,
        consumers: 12,
        preload,
        seed: 17,
    });
    let mut scheduler = if step_locks {
        N2plScheduler::step_locks()
    } else {
        N2plScheduler::operation_locks()
    };
    let cfg = EngineConfig {
        seed: 17,
        clients: 6,
        ..Default::default()
    };
    let result = run(&wl, &mut scheduler, &cfg);
    assert!(obase::core::sg::certifies_serialisable(&result.history));
    println!(
        "{scheduler_name:<22} preload={preload:<3} committed={:<3} blocked={:<4} rounds={:<5} throughput={:.3}",
        result.metrics.committed,
        result.metrics.blocked_events,
        result.metrics.rounds,
        result.metrics.throughput()
    );
    result.metrics
}

fn main() {
    println!("Producer/consumer queue, 12 producers + 12 consumers, 6 clients\n");
    for preload in [0, 4, 16, 64] {
        let op = run_with("N2PL operation locks", false, preload);
        let step = run_with("N2PL step locks", true, preload);
        let speedup = step.throughput() / op.throughput().max(f64::EPSILON);
        println!(
            "  -> step-level locking throughput advantage: {speedup:.2}x (blocking {} vs {})\n",
            step.blocked_events, op.blocked_events
        );
    }
    println!(
        "With items already in the queue, a Dequeue returns an item that no\n\
         concurrent Enqueue produced, so step-level locks let producers and\n\
         consumers run in parallel while operation-level locks serialise them."
    );
}
