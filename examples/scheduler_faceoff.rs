//! Compare every concurrency-control algorithm in the library on the same
//! nested order-processing workload, verifying each run against the
//! serialisability theorem.
//!
//! Run with `cargo run --example scheduler_faceoff`.

use obase::exec::MixedScheduler;
use obase::prelude::*;
use obase::workload::{orders, OrdersParams};
use obase_core::sched::Scheduler;

fn main() {
    let params = OrdersParams {
        desks: 2,
        inventories: 3,
        accounts: 6,
        transactions: 30,
        items_per_order: 3,
        parallel_items: true,
        seed: 23,
    };
    let wl = orders(&params);
    let cfg = EngineConfig {
        seed: 23,
        clients: 6,
        ..Default::default()
    };

    println!(
        "Nested order processing: {} orders, {} line items each, parallel items\n",
        params.transactions, params.items_per_order
    );
    println!(
        "{:<20} {:>9} {:>8} {:>9} {:>8} {:>11}",
        "scheduler", "committed", "aborts", "blocked", "rounds", "throughput"
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FlatObjectScheduler::exclusive()),
        Box::new(FlatObjectScheduler::read_write()),
        Box::new(N2plScheduler::operation_locks()),
        Box::new(N2plScheduler::step_locks()),
        Box::new(NtoScheduler::conservative()),
        Box::new(NtoScheduler::provisional()),
        Box::new(SgtCertifier::new()),
        Box::new(MixedScheduler::new().with_default_intra(Box::new(N2plScheduler::step_locks()))),
    ];

    for mut scheduler in schedulers {
        let result = run(&wl, scheduler.as_mut(), &cfg);
        // Whatever the algorithm, the committed history must be serialisable
        // (Theorem 2) and satisfy the per-object condition (Theorem 5).
        assert!(
            obase::core::sg::certifies_serialisable(&result.history),
            "{} admitted a non-serialisable history",
            result.metrics.scheduler
        );
        assert!(obase::core::local_graphs::theorem5_condition_holds(&result.history));
        println!(
            "{:<20} {:>9} {:>8} {:>9} {:>8} {:>11.3}",
            result.metrics.scheduler,
            result.metrics.committed,
            result.metrics.aborts,
            result.metrics.blocked_events,
            result.metrics.rounds,
            result.metrics.throughput()
        );
    }

    println!(
        "\nAll committed histories verified: legal, acyclic serialisation graph,\n\
         and Theorem 5's intra/inter-object condition holds."
    );
}
