//! Compare every concurrency-control algorithm in the library on the same
//! nested order-processing workload with `Runtime::faceoff`, verifying each
//! run against the serialisability theorems — then race the best scheduler
//! on both execution backends (the deterministic simulator and the
//! multi-threaded `obase-par` engine) in wall-clock time.
//!
//! Run with `cargo run --example scheduler_faceoff`.

use obase::prelude::*;
use obase::workload::{orders, OrdersParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = OrdersParams {
        desks: 2,
        inventories: 3,
        accounts: 6,
        transactions: 30,
        items_per_order: 3,
        parallel_items: true,
        seed: 23,
    };
    let wl = orders(&params);

    println!(
        "Nested order processing: {} orders, {} line items each, parallel items\n",
        params.transactions, params.items_per_order
    );

    // The contenders, as declarative specs: every basic algorithm plus the
    // Section 2 mixture (per-object step locks + the inter-object certifier).
    let mut specs = SchedulerSpec::all_basic();
    specs.push(SchedulerSpec::mixed_with_default(SchedulerSpec::n2pl_step()));

    // One runtime configuration, every scheduler: `compare` reuses the same
    // engine parameters so the face-off is apples to apples.
    let runtime = Runtime::builder()
        .scheduler(specs[0].clone())
        .clients(6)
        .seed(23)
        .verify(Verify::Full)
        .build()?;
    let faceoff = runtime.compare(&wl, &specs)?;

    // Whatever the algorithm, the committed history must be legal, have an
    // acyclic serialisation graph (Theorem 2) and satisfy the per-object
    // condition (Theorem 5).
    faceoff.assert_all_serialisable();

    println!("{}", faceoff.render_table());
    if let Some(best) = faceoff.best_by_throughput() {
        println!("highest throughput: {}", best.summary());
    }

    println!(
        "\nAll committed histories verified: legal, acyclic serialisation graph,\n\
         and Theorem 5's intra/inter-object condition holds."
    );

    // Round two: same spec, both backends. The simulator interleaves on a
    // virtual clock (reproducible, adversarial); the parallel backend runs
    // the same workload on real OS threads over the sharded store — and its
    // history passes the exact same checks.
    println!("\nBackend face-off (n2pl-op, wall clock):\n");
    for backend in [
        ExecutionBackend::Simulated,
        ExecutionBackend::Parallel { workers: 4 },
    ] {
        let report = Runtime::builder()
            .scheduler(SchedulerSpec::n2pl_operation())
            .backend(backend.clone())
            .clients(6)
            .seed(23)
            .verify(Verify::Full)
            .build()?
            .run(&wl)?;
        report.assert_serialisable();
        println!(
            "  {:>12}: {} committed in {:.2} ms ({:.0} txn/s)",
            backend.label(),
            report.metrics.committed,
            report.metrics.wall_micros as f64 / 1000.0,
            report.metrics.wall_throughput(),
        );
    }
    Ok(())
}
