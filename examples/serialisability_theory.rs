//! Work directly with the formal model: build the paper's Section 2
//! counter-example history by hand, inspect its serialisation graph, and
//! construct an equivalent serial history for a compatible interleaving
//! (Theorem 2's proof, executed).
//!
//! Run with `cargo run --example serialisability_theory`.

use obase::adt::Register;
use obase::prelude::*;
use std::sync::Arc;

fn build(incompatible: bool) -> (History, ExecId, ExecId) {
    let mut base = ObjectBase::new();
    let x = base.add_object("x", Arc::new(Register::default()));
    let y = base.add_object("y", Arc::new(Register::default()));
    let mut b = HistoryBuilder::new(Arc::new(base));
    let t1 = b.begin_top_level("T1");
    let t2 = b.begin_top_level("T2");

    // Both transactions write x then y. In the incompatible interleaving,
    // object x sees T1 before T2 while object y sees T2 before T1.
    let mut write = |t: ExecId, o: ObjectId, v: i64| {
        let (m, e) = b.invoke(t, o, "set", []);
        b.local_applied(e, Operation::unary("Write", v)).unwrap();
        b.complete_invoke(m, Value::Unit);
    };
    write(t1, x, 1);
    write(t2, x, 2);
    if incompatible {
        write(t2, y, 2);
        write(t1, y, 1);
    } else {
        write(t1, y, 1);
        write(t2, y, 2);
    }
    (b.build(), t1, t2)
}

fn main() {
    println!("== The incompatible interleaving of Section 2 ==");
    let (bad, t1, t2) = build(true);
    assert!(obase::core::legality::is_legal(&bad));
    let sg = obase::core::sg::serialisation_graph(&bad);
    println!("SG edges: {:?}", sg.edges().collect::<Vec<_>>());
    println!("SG acyclic? {}", sg.is_acyclic());
    assert!(sg.has_edge(t1, t2) && sg.has_edge(t2, t1));
    assert!(!obase::core::equivalence::is_serialisable_bruteforce(
        &bad, 256
    ));
    let report = obase::core::local_graphs::theorem5_report(&bad);
    println!(
        "Theorem 5: cyclic objects = {:?}",
        report
            .cyclic_objects
            .iter()
            .map(|(o, _)| *o)
            .collect::<Vec<_>>()
    );
    println!("  (each object alone is fine; the cycle appears at the environment)\n");

    println!("== A compatible interleaving of the same transactions ==");
    let (good, _, _) = build(false);
    let sg = obase::core::sg::serialisation_graph(&good);
    println!("SG acyclic? {}", sg.is_acyclic());
    let witness = obase::core::sg::equivalent_serial_history(&good)
        .expect("acyclic SG yields an equivalent serial history (Theorem 2)");
    assert!(obase::core::equivalence::is_serial(&witness));
    assert!(obase::core::equivalence::equivalent(&good, &witness));
    println!(
        "Constructed an equivalent serial history with {} steps.",
        witness.step_count()
    );
    println!(
        "Final states agree: {:?}",
        obase::core::replay::final_states(&witness).unwrap()
    );
}
