//! Quickstart: build an object base by hand, run a few transactions under
//! nested two-phase locking, and verify the resulting history with the
//! serialisability theorem.
//!
//! Run with `cargo run --example quickstart`.

use obase::adt::{Account, Counter};
use obase::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. An object base: two bank accounts and an audit counter.
    let mut base = ObjectBase::new();
    let alice = base.add_object("alice", Arc::new(Account::with_initial(100)));
    let bob = base.add_object("bob", Arc::new(Account::with_initial(100)));
    let audits = base.add_object("audits", Arc::new(Counter::default()));

    // 2. Methods: each account knows how to deposit/withdraw, the counter
    //    records audits.
    let mut def = obase::exec::ObjectBaseDef::new(Arc::new(base));
    for account in [alice, bob] {
        def.define_method(
            account,
            MethodDef {
                name: "withdraw".into(),
                params: 1,
                body: Program::Local {
                    op: "Withdraw".into(),
                    args: vec![obase::exec::Expr::Param(0)],
                },
            },
        );
        def.define_method(
            account,
            MethodDef {
                name: "deposit".into(),
                params: 1,
                body: Program::Local {
                    op: "Deposit".into(),
                    args: vec![obase::exec::Expr::Param(0)],
                },
            },
        );
    }
    def.define_method(
        audits,
        MethodDef {
            name: "note".into(),
            params: 0,
            body: Program::local("Add", [Value::Int(1)]),
        },
    );

    // 3. User transactions: two transfers in opposite directions plus an
    //    audit note each — nested transactions touching three objects.
    let transactions = vec![
        TxnSpec {
            name: "alice->bob".into(),
            body: Program::Seq(vec![
                Program::invoke(alice, "withdraw", [Value::Int(30)]),
                Program::invoke(bob, "deposit", [Value::Int(30)]),
                Program::invoke(audits, "note", []),
            ]),
        },
        TxnSpec {
            name: "bob->alice".into(),
            body: Program::Seq(vec![
                Program::invoke(bob, "withdraw", [Value::Int(10)]),
                Program::invoke(alice, "deposit", [Value::Int(10)]),
                Program::invoke(audits, "note", []),
            ]),
        },
    ];
    let workload = WorkloadSpec { def, transactions };

    // 4. Run under nested two-phase locking (Moss' algorithm, Section 5.1).
    let mut scheduler = N2plScheduler::operation_locks();
    let result = run(&workload, &mut scheduler, &EngineConfig::default());

    println!("scheduler          : {}", result.metrics.scheduler);
    println!("committed          : {}", result.metrics.committed);
    println!("aborts             : {}", result.metrics.aborts);
    println!("blocked events     : {}", result.metrics.blocked_events);
    println!("rounds (makespan)  : {}", result.metrics.rounds);

    // 5. Verify the run against the paper's theory.
    assert!(obase::core::legality::is_legal(&result.history));
    assert!(obase::core::sg::certifies_serialisable(&result.history));
    assert!(obase::core::local_graphs::theorem5_condition_holds(&result.history));
    let finals = obase::core::replay::final_states(&result.history).unwrap();
    println!("final states       : {finals:?}");
    let total: i64 = [alice, bob]
        .iter()
        .map(|a| finals[a].as_int().unwrap())
        .sum();
    assert_eq!(total, 200, "transfers conserve money");
    println!("history is legal, serialisable, and satisfies Theorem 5 ✓");
}
