//! Quickstart: build an object base by hand, run a few transactions under
//! nested two-phase locking via the declarative `Runtime` facade, and verify
//! the resulting history with the serialisability theorems.
//!
//! Run with `cargo run --example quickstart`.

use obase::adt::{Account, Counter};
use obase::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An object base: two bank accounts and an audit counter.
    let mut base = ObjectBase::new();
    let alice = base.add_object("alice", Arc::new(Account::with_initial(100)));
    let bob = base.add_object("bob", Arc::new(Account::with_initial(100)));
    let audits = base.add_object("audits", Arc::new(Counter::default()));

    // 2. Methods: each account knows how to deposit/withdraw, the counter
    //    records audits.
    let mut def = ObjectBaseDef::new(Arc::new(base));
    for account in [alice, bob] {
        def.define_method(
            account,
            MethodDef {
                name: "withdraw".into(),
                params: 1,
                body: Program::Local {
                    op: "Withdraw".into(),
                    args: vec![Expr::Param(0)],
                },
            },
        );
        def.define_method(
            account,
            MethodDef {
                name: "deposit".into(),
                params: 1,
                body: Program::Local {
                    op: "Deposit".into(),
                    args: vec![Expr::Param(0)],
                },
            },
        );
    }
    def.define_method(
        audits,
        MethodDef {
            name: "note".into(),
            params: 0,
            body: Program::local("Add", [Value::Int(1)]),
        },
    );

    // 3. User transactions: two transfers in opposite directions plus an
    //    audit note each — nested transactions touching three objects.
    let transactions = vec![
        TxnSpec {
            name: "alice->bob".into(),
            body: Program::Seq(vec![
                Program::invoke(alice, "withdraw", [Value::Int(30)]),
                Program::invoke(bob, "deposit", [Value::Int(30)]),
                Program::invoke(audits, "note", []),
            ]),
        },
        TxnSpec {
            name: "bob->alice".into(),
            body: Program::Seq(vec![
                Program::invoke(bob, "withdraw", [Value::Int(10)]),
                Program::invoke(alice, "deposit", [Value::Int(10)]),
                Program::invoke(audits, "note", []),
            ]),
        },
    ];
    let workload = WorkloadSpec { def, transactions };

    // 4. The scheduler is declarative data: nested two-phase locking with
    //    conservative operation locks (Moss' algorithm, Section 5.1). The
    //    same spec could have been parsed from a JSON config file.
    let spec = SchedulerSpec::n2pl_operation();
    println!("scheduler spec     : {}", spec.to_json_string());

    // 5. Build a validated runtime and run the workload.
    let runtime = Runtime::builder()
        .scheduler(spec)
        .clients(4)
        .seed(42)
        .retries(16)
        .verify(Verify::Full)
        .build()?;
    let report = runtime.run(&workload)?;

    println!("scheduler          : {}", report.scheduler);
    println!("committed          : {}", report.metrics.committed);
    println!("aborts             : {}", report.metrics.aborts);
    println!("blocked events     : {}", report.metrics.blocked_events);
    println!("rounds (makespan)  : {}", report.metrics.rounds);

    // 6. Verify the run against the paper's theory: legality, Theorem 2 and
    //    Theorem 5 in one call.
    report.assert_serialisable();
    let finals = obase::core::replay::final_states(&report.history)?;
    println!("final states       : {finals:?}");
    let total: i64 = [alice, bob]
        .iter()
        .map(|a| finals[a].as_int().unwrap())
        .sum();
    assert_eq!(total, 200, "transfers conserve money");
    println!("history is legal, serialisable, and satisfies Theorem 5 ✓");
    Ok(())
}
