//! Backend equivalence: the serialisability oracle over the parallel engine.
//!
//! Parallel runs are not reproducible — the OS scheduler interleaves the
//! workers — so they cannot be compared to the simulator step by step. What
//! must hold instead is the paper's contract: *every* history a correct
//! scheduler admits, on either backend, is legal (Definition 6), has an
//! acyclic serialisation graph with a verified serial witness (Theorem 2)
//! and satisfies the per-object condition (Theorem 5). This suite hammers
//! the multi-threaded backend with seeded workloads under every built-in
//! scheduler spec and holds each run to that oracle, and additionally
//! asserts that strict schedulers never cascade-abort (their locks are
//! released only after undo completes). The durable (write-ahead-logged)
//! backend goes through the same gate, plus one stronger demand: the log a
//! run leaves behind must recover to the *exact* history the run reported
//! (crash-point recovery is exercised separately in `tests/durability.rs`).

use obase::prelude::*;
use obase::workload as wl;
use std::sync::Arc;

mod common;
use common::worker_counts;

/// Seeded workload variety: banking (nested transfers + audits), counters
/// (commuting hotspot) and dictionaries (reads/inserts/deletes), rotated by
/// seed so the oracle sees different shapes and contention levels.
fn workload_for(seed: u64) -> WorkloadSpec {
    match seed % 3 {
        0 => wl::banking(&wl::BankingParams {
            accounts: 4,
            transactions: 8,
            skew: 0.8,
            seed,
            ..Default::default()
        }),
        1 => wl::counters(&wl::CounterParams {
            counters: 2,
            transactions: 8,
            touches_per_txn: 2,
            read_fraction: 0.3,
            skew: 0.9,
            seed,
        }),
        _ => wl::dictionary(&wl::DictionaryParams {
            dictionaries: 2,
            keys: 6,
            transactions: 8,
            ops_per_txn: 2,
            lookup_fraction: 0.4,
            key_skew: 0.7,
            seed,
        }),
    }
}

fn parallel_runtime(spec: SchedulerSpec, workers: usize) -> Runtime {
    Runtime::builder()
        .scheduler(spec)
        .backend(ExecutionBackend::Parallel { workers })
        .retries(64)
        .verify(Verify::Full)
        .build()
        .expect("valid parallel configuration")
}

/// `true` for schedulers that hold every resource to top-level commit and
/// must therefore never observe (or produce) a cascading abort.
fn is_strict(spec: &SchedulerSpec) -> bool {
    matches!(
        spec,
        SchedulerSpec::Flat { .. } | SchedulerSpec::N2pl { .. }
    )
}

/// The acceptance gate: 100 seeds × every built-in spec (plus the mixed
/// composition), every history past the full oracle. Defaults to 4 workers;
/// CI re-runs the suite pinned to 1 and 8 via `OBASE_EQUIV_WORKERS`.
#[test]
fn hundred_seed_oracle_over_all_builtin_specs() {
    let mut specs = SchedulerSpec::all_basic();
    specs.push(SchedulerSpec::mixed_with_default(SchedulerSpec::n2pl_step()));
    let workers = worker_counts(&[4]);
    let mut runs = 0usize;
    for &w in &workers {
        for seed in 0..100u64 {
            let workload = workload_for(seed);
            for spec in &specs {
                let report = parallel_runtime(spec.clone(), w)
                    .run(&workload)
                    .expect("well-formed generated workload");
                assert!(
                    !report.metrics.timed_out,
                    "{} deadlined on seed {seed} ({w} workers)",
                    report.scheduler
                );
                report.assert_serialisable();
                if is_strict(spec) {
                    assert_eq!(
                        report.metrics.cascading_aborts, 0,
                        "strict scheduler {} cascaded on seed {seed} ({w} workers)",
                        report.scheduler
                    );
                }
                runs += 1;
            }
        }
    }
    assert_eq!(runs, workers.len() * 100 * specs.len());
}

/// The durable backend through the same gate: every seed × spec cell runs
/// write-ahead-logged (group commit 8), every history passes the full
/// oracle, and the log each run leaves behind recovers — crash-free — to a
/// history that is *structurally identical* to the one the run reported
/// (recovery is exact replay, not approximation).
#[test]
fn hundred_seed_oracle_over_the_durable_backend() {
    let mut specs = SchedulerSpec::all_basic();
    specs.push(SchedulerSpec::mixed_with_default(SchedulerSpec::n2pl_step()));
    let mut runs = 0usize;
    for seed in 0..100u64 {
        let workload = workload_for(seed);
        for spec in &specs {
            let dir = obase::wal::scratch_dir("equiv-durable");
            let report = Runtime::builder()
                .scheduler(spec.clone())
                .backend(ExecutionBackend::Durable {
                    dir: dir.clone(),
                    group_commit: 8,
                })
                .seed(seed)
                .retries(64)
                .verify(Verify::Full)
                .build()
                .expect("valid durable configuration")
                .run(&workload)
                .expect("well-formed generated workload");
            assert!(
                !report.metrics.timed_out,
                "{} deadlined on seed {seed} (durable)",
                report.scheduler
            );
            report.assert_serialisable();
            if is_strict(spec) {
                assert_eq!(
                    report.metrics.cascading_aborts, 0,
                    "strict scheduler {} cascaded on seed {seed} (durable)",
                    report.scheduler
                );
            }
            let recovered = obase::wal::WalBackend::new(workload.def.base().clone())
                .recover(&dir)
                .expect("a crash-free log recovers");
            assert!(!recovered.torn, "clean log scanned as torn (seed {seed})");
            assert!(
                obase::core::record::same_structure(&recovered.raw_history, &report.raw_history),
                "{} seed {seed}: recovery did not reproduce the run's history",
                report.scheduler
            );
            recovered.assert_serialisable();
            assert_eq!(
                recovered.committed.len(),
                report.metrics.committed,
                "{} seed {seed}: recovery changed the committed set",
                report.scheduler
            );
            assert_eq!(recovered.crash_rollbacks(), 0);
            std::fs::remove_dir_all(&dir).ok();
            runs += 1;
        }
    }
    assert_eq!(runs, 100 * specs.len());
}

/// Mixed per-object compositions (Section 2's vision): uniform defaults,
/// heterogeneous per-object policies, and the certifier-only coverage of
/// objects with no dedicated policy — all through the one oracle, at worker
/// counts {1, 2, 8}.
#[test]
fn mixed_scheduler_specs_pass_the_oracle() {
    let mixed_specs = vec![
        SchedulerSpec::mixed_with_default(SchedulerSpec::n2pl_operation()),
        SchedulerSpec::mixed_with_default(SchedulerSpec::nto_provisional()),
        // Heterogeneous: one counter under step locks, one under operation
        // locks, the rest (if any) under the default NTO policy.
        SchedulerSpec::Mixed {
            default_intra: Some(Box::new(SchedulerSpec::nto_conservative())),
            per_object: vec![
                (ObjectId(0), SchedulerSpec::n2pl_step()),
                (ObjectId(1), SchedulerSpec::n2pl_operation()),
            ],
        },
        // No default: objects without a dedicated policy are covered by the
        // inter-object certifier alone.
        SchedulerSpec::Mixed {
            default_intra: None,
            per_object: vec![(ObjectId(0), SchedulerSpec::n2pl_step())],
        },
    ];
    for &workers in &worker_counts(&[1, 2, 8]) {
        for seed in [5u64, 23, 71] {
            let workload = workload_for(seed);
            for spec in &mixed_specs {
                let report = parallel_runtime(spec.clone(), workers)
                    .run(&workload)
                    .expect("well-formed generated workload");
                assert!(
                    !report.metrics.timed_out,
                    "{} deadlined on seed {seed} ({workers} workers)",
                    report.scheduler
                );
                report.assert_serialisable();
            }
        }
    }
}

/// A deadlock-heavy hot-key workload: transactions write the same two hot
/// registers in opposite orders, the classic deadlock shape under strict
/// operation-level N2PL. At 1 worker the schedule is degenerate (no
/// inter-transaction interleaving, so nothing may deadlock or abort); at 2
/// and 8 the monitor must keep breaking cycles until everything commits —
/// with a serialisable history and zero cascades every time.
#[test]
fn deadlock_heavy_hot_keys_across_worker_counts() {
    let mut base = ObjectBase::new();
    let x = base.add_object("x", Arc::new(obase::adt::Register::default()));
    let y = base.add_object("y", Arc::new(obase::adt::Register::default()));
    let mut def = ObjectBaseDef::new(Arc::new(base));
    for o in [x, y] {
        def.define_method(
            o,
            MethodDef {
                name: "set".into(),
                params: 1,
                body: Program::Local {
                    op: "Write".into(),
                    args: vec![Expr::Param(0)],
                },
            },
        );
    }
    let transactions: Vec<TxnSpec> = (0..8)
        .map(|i| {
            let (first, second) = if i % 2 == 0 { (x, y) } else { (y, x) };
            TxnSpec {
                name: format!("T{i}"),
                body: Program::Seq(vec![
                    Program::invoke(first, "set", [Value::Int(i)]),
                    Program::invoke(second, "set", [Value::Int(i)]),
                ]),
            }
        })
        .collect();
    let workload = WorkloadSpec { def, transactions };
    for &workers in &worker_counts(&[1, 2, 8]) {
        // The deadlock window depends on the OS interleaving; repeat so each
        // worker count sees plenty of real contention.
        for _ in 0..5 {
            let report = parallel_runtime(SchedulerSpec::n2pl_operation(), workers)
                .run(&workload)
                .expect("well-formed workload");
            assert_eq!(
                report.metrics.committed,
                8,
                "lost transactions at {workers} workers: {}",
                report.summary()
            );
            assert!(!report.metrics.timed_out);
            report.assert_serialisable();
            assert_eq!(
                report.metrics.cascading_aborts, 0,
                "strict N2PL cascaded at {workers} workers"
            );
            if workers == 1 {
                // Degenerate single-worker schedule: serial execution, no
                // deadlocks possible between top-level transactions.
                assert_eq!(report.metrics.deadlocks, 0, "{}", report.summary());
            }
            // Every abort the run did record must be a deadlock (bucketed
            // under its variant key).
            for reason in report.metrics.aborts_by_reason.keys() {
                assert_eq!(reason, "deadlock");
            }
        }
    }
}

/// The targeted-wakeup stress: many transactions all writing ONE hot
/// register under operation-level N2PL, so at any moment one holds the lock
/// and everyone else is parked in the waiter registry behind it. Every
/// commit must wake exactly the right waiters — a lost wakeup would leave a
/// parked transaction relying on the tick backstop at best and hanging the
/// run at worst. Swept at workers {2, 8} (override via
/// `OBASE_EQUIV_WORKERS`), repeated so the park/wake window is hit many
/// times; everything must commit, serialisably, well inside the deadline.
#[test]
fn hot_key_parking_has_no_lost_wakeups() {
    let mut base = ObjectBase::new();
    let hot = base.add_object("hot", Arc::new(obase::adt::Register::default()));
    let mut def = ObjectBaseDef::new(Arc::new(base));
    def.define_method(
        hot,
        MethodDef {
            name: "set".into(),
            params: 1,
            body: Program::Local {
                op: "Write".into(),
                args: vec![Expr::Param(0)],
            },
        },
    );
    let transactions: Vec<TxnSpec> = (0..24)
        .map(|i| TxnSpec {
            name: format!("W{i}"),
            body: Program::invoke(hot, "set", [Value::Int(i)]),
        })
        .collect();
    let workload = WorkloadSpec { def, transactions };
    for &workers in &worker_counts(&[2, 8]) {
        for round in 0..5 {
            let report = parallel_runtime(SchedulerSpec::n2pl_operation(), workers)
                .run(&workload)
                .expect("well-formed workload");
            assert!(
                !report.metrics.timed_out,
                "hot-key parking hung at {workers} workers (round {round}): {}",
                report.summary()
            );
            assert_eq!(
                report.metrics.committed,
                24,
                "lost transactions at {workers} workers (round {round}): {}",
                report.summary()
            );
            report.assert_serialisable();
            // Pure write-write queueing: nothing may abort, let alone
            // cascade.
            assert_eq!(report.metrics.aborts, 0, "{}", report.summary());
        }
    }
}

/// Strict blocking schedulers must settle every transaction (deadlock
/// victims retry until they commit), and the committed effects must replay
/// to the same final state the simulator reaches — counters commute, so the
/// end state is interleaving-independent.
#[test]
fn strict_schedulers_commit_everything_with_equivalent_effects() {
    for seed in [3u64, 7, 11, 19] {
        let workload = wl::counters(&wl::CounterParams {
            counters: 3,
            transactions: 10,
            touches_per_txn: 2,
            read_fraction: 0.0, // writes only: the final state is seed-determined
            skew: 0.5,
            seed,
        });
        let simulated = Runtime::builder()
            .scheduler(SchedulerSpec::n2pl_operation())
            .seed(seed)
            .verify(Verify::Full)
            .build()
            .unwrap()
            .run(&workload)
            .unwrap();
        let parallel = parallel_runtime(SchedulerSpec::n2pl_operation(), 4)
            .run(&workload)
            .unwrap();
        for report in [&simulated, &parallel] {
            assert_eq!(report.metrics.committed, 10, "{}", report.summary());
            report.assert_serialisable();
        }
        let a = obase::core::replay::final_states(&simulated.history).unwrap();
        let b = obase::core::replay::final_states(&parallel.history).unwrap();
        assert_eq!(a, b, "backends disagree on final states for seed {seed}");
    }
}

/// The parallel backend honours worker counts beyond the acceptance minimum
/// and reports them in the metrics.
#[test]
fn worker_scaling_is_safe() {
    let workload = workload_for(42);
    for workers in [1usize, 2, 8] {
        let report = parallel_runtime(SchedulerSpec::n2pl_step(), workers)
            .run(&workload)
            .unwrap();
        assert_eq!(report.metrics.backend, format!("parallel({workers})"));
        assert!(report.metrics.wall_micros > 0);
        report.assert_serialisable();
    }
}

/// Internal (Par) parallelism rides on real threads inside one transaction;
/// the oracle still holds and nothing deadlocks against the siblings.
#[test]
fn internal_parallelism_on_real_threads() {
    for seed in 0..8u64 {
        let workload = wl::orders(&wl::OrdersParams {
            desks: 2,
            inventories: 4,
            accounts: 4,
            transactions: 6,
            items_per_order: 4,
            parallel_items: true,
            seed,
        });
        let report = parallel_runtime(SchedulerSpec::n2pl_operation(), 4)
            .run(&workload)
            .unwrap();
        assert!(!report.metrics.timed_out);
        report.assert_serialisable();
        assert_eq!(report.metrics.cascading_aborts, 0);
    }
}

/// Zero workers is a configuration error, caught at build time.
#[test]
fn zero_workers_is_rejected() {
    let err = Runtime::builder()
        .scheduler(SchedulerSpec::n2pl_step())
        .backend(ExecutionBackend::Parallel { workers: 0 })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroWorkers);
}
