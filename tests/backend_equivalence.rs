//! Backend equivalence: the serialisability oracle over the parallel engine.
//!
//! Parallel runs are not reproducible — the OS scheduler interleaves the
//! workers — so they cannot be compared to the simulator step by step. What
//! must hold instead is the paper's contract: *every* history a correct
//! scheduler admits, on either backend, is legal (Definition 6), has an
//! acyclic serialisation graph with a verified serial witness (Theorem 2)
//! and satisfies the per-object condition (Theorem 5). This suite hammers
//! the multi-threaded backend with seeded workloads under every built-in
//! scheduler spec and holds each run to that oracle, and additionally
//! asserts that strict schedulers never cascade-abort (their locks are
//! released only after undo completes).

use obase::prelude::*;
use obase::workload as wl;

/// Seeded workload variety: banking (nested transfers + audits), counters
/// (commuting hotspot) and dictionaries (reads/inserts/deletes), rotated by
/// seed so the oracle sees different shapes and contention levels.
fn workload_for(seed: u64) -> WorkloadSpec {
    match seed % 3 {
        0 => wl::banking(&wl::BankingParams {
            accounts: 4,
            transactions: 8,
            skew: 0.8,
            seed,
            ..Default::default()
        }),
        1 => wl::counters(&wl::CounterParams {
            counters: 2,
            transactions: 8,
            touches_per_txn: 2,
            read_fraction: 0.3,
            skew: 0.9,
            seed,
        }),
        _ => wl::dictionary(&wl::DictionaryParams {
            dictionaries: 2,
            keys: 6,
            transactions: 8,
            ops_per_txn: 2,
            lookup_fraction: 0.4,
            key_skew: 0.7,
            seed,
        }),
    }
}

fn parallel_runtime(spec: SchedulerSpec, workers: usize) -> Runtime {
    Runtime::builder()
        .scheduler(spec)
        .backend(ExecutionBackend::Parallel { workers })
        .retries(64)
        .verify(Verify::Full)
        .build()
        .expect("valid parallel configuration")
}

/// `true` for schedulers that hold every resource to top-level commit and
/// must therefore never observe (or produce) a cascading abort.
fn is_strict(spec: &SchedulerSpec) -> bool {
    matches!(
        spec,
        SchedulerSpec::Flat { .. } | SchedulerSpec::N2pl { .. }
    )
}

/// The acceptance gate: 100 seeds × every built-in spec (plus the mixed
/// composition) on 4 workers, every history past the full oracle.
#[test]
fn hundred_seed_oracle_over_all_builtin_specs() {
    let mut specs = SchedulerSpec::all_basic();
    specs.push(SchedulerSpec::mixed_with_default(SchedulerSpec::n2pl_step()));
    let mut runs = 0usize;
    for seed in 0..100u64 {
        let workload = workload_for(seed);
        for spec in &specs {
            let report = parallel_runtime(spec.clone(), 4)
                .run(&workload)
                .expect("well-formed generated workload");
            assert!(
                !report.metrics.timed_out,
                "{} deadlined on seed {seed}",
                report.scheduler
            );
            report.assert_serialisable();
            if is_strict(spec) {
                assert_eq!(
                    report.metrics.cascading_aborts, 0,
                    "strict scheduler {} cascaded on seed {seed}",
                    report.scheduler
                );
            }
            runs += 1;
        }
    }
    assert_eq!(runs, 100 * specs.len());
}

/// Strict blocking schedulers must settle every transaction (deadlock
/// victims retry until they commit), and the committed effects must replay
/// to the same final state the simulator reaches — counters commute, so the
/// end state is interleaving-independent.
#[test]
fn strict_schedulers_commit_everything_with_equivalent_effects() {
    for seed in [3u64, 7, 11, 19] {
        let workload = wl::counters(&wl::CounterParams {
            counters: 3,
            transactions: 10,
            touches_per_txn: 2,
            read_fraction: 0.0, // writes only: the final state is seed-determined
            skew: 0.5,
            seed,
        });
        let simulated = Runtime::builder()
            .scheduler(SchedulerSpec::n2pl_operation())
            .seed(seed)
            .verify(Verify::Full)
            .build()
            .unwrap()
            .run(&workload)
            .unwrap();
        let parallel = parallel_runtime(SchedulerSpec::n2pl_operation(), 4)
            .run(&workload)
            .unwrap();
        for report in [&simulated, &parallel] {
            assert_eq!(report.metrics.committed, 10, "{}", report.summary());
            report.assert_serialisable();
        }
        let a = obase::core::replay::final_states(&simulated.history).unwrap();
        let b = obase::core::replay::final_states(&parallel.history).unwrap();
        assert_eq!(a, b, "backends disagree on final states for seed {seed}");
    }
}

/// The parallel backend honours worker counts beyond the acceptance minimum
/// and reports them in the metrics.
#[test]
fn worker_scaling_is_safe() {
    let workload = workload_for(42);
    for workers in [1usize, 2, 8] {
        let report = parallel_runtime(SchedulerSpec::n2pl_step(), workers)
            .run(&workload)
            .unwrap();
        assert_eq!(report.metrics.backend, format!("parallel({workers})"));
        assert!(report.metrics.wall_micros > 0);
        report.assert_serialisable();
    }
}

/// Internal (Par) parallelism rides on real threads inside one transaction;
/// the oracle still holds and nothing deadlocks against the siblings.
#[test]
fn internal_parallelism_on_real_threads() {
    for seed in 0..8u64 {
        let workload = wl::orders(&wl::OrdersParams {
            desks: 2,
            inventories: 4,
            accounts: 4,
            transactions: 6,
            items_per_order: 4,
            parallel_items: true,
            seed,
        });
        let report = parallel_runtime(SchedulerSpec::n2pl_operation(), 4)
            .run(&workload)
            .unwrap();
        assert!(!report.metrics.timed_out);
        report.assert_serialisable();
        assert_eq!(report.metrics.cascading_aborts, 0);
    }
}

/// Zero workers is a configuration error, caught at build time.
#[test]
fn zero_workers_is_rejected() {
    let err = Runtime::builder()
        .scheduler(SchedulerSpec::n2pl_step())
        .backend(ExecutionBackend::Parallel { workers: 0 })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroWorkers);
}
