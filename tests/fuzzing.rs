//! The fuzzer's acceptance gates.
//!
//! A fuzzer's acceptance test is not "it runs" but "it finds a real bug":
//! with a planted saboteur (a scheduler decorator that drops every conflict
//! edge — the failure mode of a missed lock conflict or a skipped timestamp
//! check) a bounded seeded campaign must catch the oracle violation AND
//! auto-shrink it to a minimal reproducer. The other gates hold the
//! campaign to its determinism contract (the case stream is a pure function
//! of the seed; a wall-clock budget only decides how far down the stream a
//! run gets) and replay the repository's own `bugbase/` corpus — the
//! forever-green regression suite.

use obase::fuzz::{
    bugbase, campaign::run_campaign, edge_dropper, DiffConfig, FailureKind, FuzzConfig,
};
use std::time::Duration;

/// A small deterministic campaign configuration: simulator-only legs keep
/// the gate fast and reproducible.
fn sim_only(seed: u64) -> FuzzConfig {
    FuzzConfig {
        seed,
        diff: DiffConfig {
            workers: vec![],
            durable: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The planted-bug gate: a saboteur dropping every conflict edge must be
/// caught by the oracle within a bounded seeded run, and the shrinker must
/// minimise the reproducer to at most 2 client classes at nesting depth
/// at most 2.
#[test]
fn a_planted_edge_drop_is_found_and_shrunk_small() {
    let cfg = FuzzConfig {
        max_cases: Some(30),
        max_bugs: 1,
        diff: DiffConfig {
            saboteur: Some(edge_dropper(1)),
            ..sim_only(42).diff
        },
        ..sim_only(42)
    };
    let outcome = run_campaign(&cfg);
    assert!(
        !outcome.bugs.is_empty(),
        "the saboteur dropped every conflict edge, yet {} cases found nothing",
        outcome.cases
    );
    let bug = &outcome.bugs[0];
    assert_eq!(bug.kind, FailureKind::Oracle, "detail: {}", bug.detail);
    let s = &bug.case.scenario;
    assert!(
        s.mix.len() <= 2,
        "shrinker left {} client classes (≤ 2 expected): {}",
        s.mix.len(),
        s.to_json_string()
    );
    assert!(
        s.mix.iter().all(|c| c.nesting.depth <= 2),
        "shrinker left nesting depth > 2: {}",
        s.to_json_string()
    );
}

/// Determinism gate: two campaigns with the same seed and case bound are
/// indistinguishable — cases, runs, commits and the whole coverage record.
#[test]
fn the_campaign_is_deterministic_per_seed() {
    let cfg = FuzzConfig {
        max_cases: Some(6),
        ..sim_only(7)
    };
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(a.cases, b.cases);
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.committed, b.committed);
    assert_eq!(
        a.coverage.to_json().to_string(),
        b.coverage.to_json().to_string()
    );
    // A different seed genuinely changes the stream.
    let c = run_campaign(&FuzzConfig {
        max_cases: Some(6),
        ..sim_only(8)
    });
    assert_ne!(
        a.coverage.to_json().to_string(),
        c.coverage.to_json().to_string()
    );
}

/// Budget gate: a wall-clock budget does not change the case stream, only
/// how far down it a run gets — whatever prefix a budgeted run covers, a
/// case-bounded run over the same stream covers identically. This is what
/// makes the time-budgeted CI smoke job sound.
#[test]
fn a_budget_only_truncates_the_deterministic_stream() {
    let budgeted = run_campaign(&FuzzConfig {
        budget: Some(Duration::from_secs(5)),
        max_cases: Some(4),
        ..sim_only(11)
    });
    assert!(budgeted.cases >= 1, "five seconds covers at least one case");
    let bounded = run_campaign(&FuzzConfig {
        max_cases: Some(budgeted.cases),
        ..sim_only(11)
    });
    assert_eq!(budgeted.cases, bounded.cases);
    assert_eq!(budgeted.runs, bounded.runs);
    assert_eq!(budgeted.committed, bounded.committed);
    assert_eq!(
        budgeted.coverage.to_json().to_string(),
        bounded.coverage.to_json().to_string()
    );
}

/// Clean-engine gate: without a saboteur, a seeded sweep over the real
/// schedulers finds nothing — every generated case passes the full oracle.
#[test]
fn a_clean_sweep_files_no_bugs() {
    let outcome = run_campaign(&FuzzConfig {
        max_cases: Some(8),
        ..sim_only(3)
    });
    assert!(
        outcome.bugs.is_empty(),
        "clean engine produced bugs: {:?}",
        outcome
            .bugs
            .iter()
            .map(|b| format!("[{}] {}", b.kind.key(), b.detail))
            .collect::<Vec<_>>()
    );
    assert_eq!(outcome.duplicates, 0);
    assert!(outcome.committed > 0, "the sweep actually committed work");
}

/// The wire gate: with [`DiffConfig::serve`] on, every generated case is
/// also submitted over a real TCP socket to an in-process `obase-serve`
/// server and the merged admitted history is held to the same oracle as
/// the in-process legs. A clean engine must stay clean through the wire.
#[test]
fn the_serve_leg_holds_the_wire_to_the_oracle() {
    let outcome = run_campaign(&FuzzConfig {
        max_cases: Some(4),
        diff: DiffConfig {
            workers: vec![2],
            durable: false,
            serve: true,
            ..Default::default()
        },
        ..sim_only(11)
    });
    assert!(
        outcome.bugs.is_empty(),
        "the wire leg produced bugs on a clean engine: {:?}",
        outcome
            .bugs
            .iter()
            .map(|b| format!("[{}] on {} {}", b.kind.key(), b.backend, b.detail))
            .collect::<Vec<_>>()
    );
    // Per spec: 2 sim runs + 1 parallel run + 1 serve run.
    assert!(
        outcome.runs >= outcome.cases * 4,
        "the serve leg actually ran"
    );
}

/// The repository corpus replays green on the full differential battery —
/// sim, parallel and durable legs. Every entry here was once a real,
/// shrunk failure (or a hand-filed regression shape); a red entry means a
/// fixed bug came back.
#[test]
fn the_repository_bugbase_replays_green() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("bugbase");
    assert!(
        dir.is_dir(),
        "the repository ships a seeded bugbase/ corpus"
    );
    let cfg = DiffConfig {
        workers: vec![1, 2],
        durable: true,
        wal_tag: "bugbase-gate".to_owned(),
        saboteur: None,
        serve: false,
    };
    let results = bugbase::replay_all(&dir, &cfg).expect("corpus loads");
    assert!(!results.is_empty(), "the corpus has at least one entry");
    let red: Vec<String> = results
        .iter()
        .filter_map(|(entry, result)| {
            result.as_ref().err().map(|f| {
                format!(
                    "{} [{}] on {} under {}: {}",
                    entry.fingerprint,
                    f.kind.key(),
                    f.backend,
                    f.spec,
                    f.detail
                )
            })
        })
        .collect();
    assert!(
        red.is_empty(),
        "bugbase entries regressed:\n{}",
        red.join("\n")
    );
}
