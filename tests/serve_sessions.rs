//! Session lifecycle tests for the TCP front end: happy paths, concurrent
//! sessions, disconnects mid-transaction, backpressure, drain, live
//! reconcile — and the merged history of everything admitted held to the
//! serialisability oracle.

use obase::runtime::SchedulerSpec;
use obase::scenario::by_name;
use obase::serve::{
    check_admitted, wire, Frame, RejectReason, ServeClient, ServeConfig, Server, SubmitOutcome,
    PROTOCOL_VERSION,
};
use obase_ser::Json;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The library scenario every test serves: two hot queues under a skewed
/// key distribution — enough contention that retries and aborts actually
/// happen on the way to the oracle.
fn scenario() -> obase::scenario::Scenario {
    by_name("hot-queue").expect("library scenario")
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        batch_max: 4,
        linger: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

/// Polls the server's status document until `admitted` reaches `want`
/// (submission is pipelined; admission is asynchronous).
fn wait_admitted(server: &Server, want: i64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let admitted = server
            .status()
            .get("admitted")
            .and_then(Json::as_int)
            .unwrap_or(0);
        if admitted >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "only {admitted} of {want} admitted"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn happy_path_submit_result_and_oracle() {
    let scenario = scenario();
    let workload = scenario.compile();
    let server = Server::for_scenario(&scenario, quick_config(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.addr(), "happy").expect("connect");
    assert!(client.objects() > 0, "welcome reports the object base size");

    let total = workload.transactions.len();
    let mut committed = 0u64;
    for txn in &workload.transactions {
        match client
            .submit_wait(&txn.name, txn.body.clone())
            .expect("settle")
        {
            SubmitOutcome::Committed { .. } => committed += 1,
            SubmitOutcome::GaveUp { .. } => {}
            other => panic!("{}: unexpected outcome {other:?}", txn.name),
        }
    }
    client.goodbye();

    let summary = server.shutdown();
    assert_eq!(summary.admitted, total as u64);
    assert_eq!(summary.committed + summary.gave_up, summary.admitted);
    assert_eq!(summary.committed, committed);
    assert_eq!(summary.oracle_failures, 0);
    assert_eq!(summary.e2e.count(), total as u64);
    let history = summary.history.expect("keep_history is on by default");
    check_admitted(&history).expect("admitted history is serialisable");
}

#[test]
fn concurrent_sessions_interleave_and_merge_serialisably() {
    let scenario = scenario();
    let workload = scenario.compile();
    let server = Server::for_scenario(&scenario, quick_config(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    const SESSIONS: usize = 6;
    const PER_SESSION: usize = 12;
    let mut handles = Vec::new();
    for s in 0..SESSIONS {
        let templates = workload.transactions.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr, &format!("conc-{s}")).expect("connect");
            // Pipeline the whole window, then collect: sessions overlap on
            // the wire and inside the admission queue.
            let ids: Vec<u64> = (0..PER_SESSION)
                .map(|i| {
                    let t = &templates[(s + i) % templates.len()];
                    client.submit(&t.name, t.body.clone()).expect("submit")
                })
                .collect();
            let settled = ids
                .into_iter()
                .filter(|&id| client.wait(id).expect("wait").is_settled())
                .count();
            client.goodbye();
            settled
        }));
    }
    let settled: usize = handles.into_iter().map(|h| h.join().expect("join")).sum();
    assert_eq!(
        settled,
        SESSIONS * PER_SESSION,
        "every pipelined submission settled"
    );

    let summary = server.shutdown();
    assert_eq!(summary.admitted, (SESSIONS * PER_SESSION) as u64);
    assert_eq!(summary.committed + summary.gave_up, summary.admitted);
    assert_eq!(summary.oracle_failures, 0);
    check_admitted(&summary.history.expect("history"))
        .expect("merged history of all sessions is serialisable");
}

#[test]
fn client_disconnect_mid_transaction_is_clean() {
    let scenario = scenario();
    let workload = scenario.compile();
    let server = Server::for_scenario(&scenario, quick_config(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // A client submits and vanishes without reading its result.
    let mut doomed = ServeClient::connect(addr, "doomed").expect("connect");
    let txn = &workload.transactions[0];
    doomed.submit(&txn.name, txn.body.clone()).expect("submit");
    drop(doomed);

    // Another client tears its submit frame in half and vanishes.
    {
        let mut raw = TcpStream::connect(addr).expect("raw connect");
        wire::write_frame(
            &mut raw,
            &Frame::Hello {
                client: "torn".into(),
                protocol: PROTOCOL_VERSION,
            },
        )
        .expect("hello");
        let welcome = wire::read_frame(&mut raw).expect("welcome");
        assert!(matches!(welcome, Frame::Welcome { .. }));
        let bytes = wire::encode_frame(&Frame::Submit {
            id: 1,
            name: txn.name.clone(),
            body: txn.body.clone(),
        });
        use std::io::Write;
        raw.write_all(&bytes[..bytes.len() / 2])
            .expect("half a frame");
        drop(raw);
    }

    // The orphaned-but-admitted transaction still runs to settlement; the
    // torn one was never admitted; the server keeps serving.
    wait_admitted(&server, 1);
    server.drain();
    server.resume();
    let mut survivor = ServeClient::connect(addr, "survivor").expect("connect");
    let outcome = survivor
        .submit_wait(&txn.name, txn.body.clone())
        .expect("server still serves after both disconnects");
    assert!(outcome.is_settled());
    survivor.goodbye();

    let summary = server.shutdown();
    assert_eq!(
        summary.admitted, 2,
        "doomed + survivor, never the torn frame"
    );
    assert_eq!(summary.committed + summary.gave_up, summary.admitted);
    check_admitted(&summary.history.expect("history")).expect("serialisable");
}

#[test]
fn queue_full_is_a_typed_reject_not_a_hang() {
    let scenario = scenario();
    let workload = scenario.compile();
    // Depth 2, a long linger and a large batch: the executor sits on the
    // queue long enough that a third submission must find it full.
    let config = ServeConfig {
        queue_depth: 2,
        batch_max: 64,
        linger: Duration::from_millis(600),
        ..ServeConfig::default()
    };
    let server = Server::for_scenario(&scenario, config, "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.addr(), "pressure").expect("connect");

    let txn = &workload.transactions[0];
    let a = client.submit(&txn.name, txn.body.clone()).expect("submit");
    let b = client.submit(&txn.name, txn.body.clone()).expect("submit");
    let c = client.submit(&txn.name, txn.body.clone()).expect("submit");

    // The reject must arrive immediately — well before the lingering batch
    // settles — and carry the configured depth.
    let started = Instant::now();
    match client.wait(c).expect("reject frame") {
        SubmitOutcome::Rejected(RejectReason::QueueFull { depth }) => assert_eq!(depth, 2),
        other => panic!("expected a queue-full reject, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(400),
        "the reject waited on the batch: backpressure is supposed to be immediate"
    );
    assert!(client.wait(a).expect("a").is_settled());
    assert!(client.wait(b).expect("b").is_settled());
    client.goodbye();

    let summary = server.shutdown();
    assert_eq!(
        summary.admitted, 2,
        "the rejected submission was never admitted"
    );
}

#[test]
fn drain_completes_in_flight_work_then_rejects_until_resume() {
    let scenario = scenario();
    let workload = scenario.compile();
    let server = Server::for_scenario(&scenario, quick_config(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.addr(), "drainer").expect("connect");

    let ids: Vec<u64> = workload
        .transactions
        .iter()
        .map(|t| client.submit(&t.name, t.body.clone()).expect("submit"))
        .collect();
    wait_admitted(&server, ids.len() as i64);
    server.drain();

    // Drain returned, so everything admitted has already settled; the
    // results are waiting in our socket.
    for id in ids {
        assert!(client.wait(id).expect("wait").is_settled());
    }
    let txn = &workload.transactions[0];
    match client
        .submit_wait(&txn.name, txn.body.clone())
        .expect("reject")
    {
        SubmitOutcome::Rejected(RejectReason::Draining) => {}
        other => panic!("expected a draining reject, got {other:?}"),
    }
    server.resume();
    assert!(client
        .submit_wait(&txn.name, txn.body.clone())
        .expect("settle")
        .is_settled());
    client.goodbye();
    let summary = server.shutdown();
    assert_eq!(summary.admitted, workload.transactions.len() as u64 + 1);
}

#[test]
fn reconcile_mid_load_loses_zero_in_flight_transactions() {
    let scenario = scenario();
    let workload = scenario.compile();
    let config = ServeConfig {
        scheduler: SchedulerSpec::n2pl_operation(),
        workers: 2,
        queue_depth: 512,
        batch_max: 4,
        linger: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let server = Server::for_scenario(&scenario, config, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    const SESSIONS: usize = 4;
    const PER_SESSION: usize = 24;
    let mut handles = Vec::new();
    for s in 0..SESSIONS {
        let templates = workload.transactions.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr, &format!("load-{s}")).expect("connect");
            // Sequential submit-and-wait keeps load flowing across the
            // whole window the reconcile lands in.
            let acks = (0..PER_SESSION)
                .filter(|i| {
                    let t = &templates[(s + i) % templates.len()];
                    client
                        .submit_wait(&t.name, t.body.clone())
                        .expect("settle")
                        .is_settled()
                })
                .count();
            client.goodbye();
            acks
        }));
    }

    // Mid-load: swap the scheduler spec AND resize the worker pool, over
    // the wire, from an admin connection.
    std::thread::sleep(Duration::from_millis(30));
    let mut admin = ServeClient::connect(addr, "admin").expect("connect");
    let desired = Json::object([
        ("scheduler", SchedulerSpec::nto_conservative().to_json()),
        ("workers", Json::Int(4)),
    ]);
    let changed = admin.reconcile(desired.clone()).expect("reconcile");
    assert!(
        changed.contains(&"scheduler".to_string()),
        "changed: {changed:?}"
    );
    assert!(
        changed.contains(&"workers".to_string()),
        "changed: {changed:?}"
    );
    // Idempotent: the same desired state again changes nothing.
    assert!(admin
        .reconcile(desired)
        .expect("reconcile again")
        .is_empty());
    admin.goodbye();
    let live = server.config();
    assert_eq!(live.workers, 4);
    assert_eq!(
        live.scheduler.label(),
        SchedulerSpec::nto_conservative().label()
    );

    let acks: usize = handles.into_iter().map(|h| h.join().expect("join")).sum();
    assert_eq!(
        acks,
        SESSIONS * PER_SESSION,
        "every client-side submission was acked across the live reconcile"
    );

    let summary = server.shutdown();
    assert_eq!(summary.admitted, (SESSIONS * PER_SESSION) as u64);
    assert_eq!(
        summary.committed + summary.gave_up,
        summary.admitted,
        "zero in-flight transactions lost across the reconcile"
    );
    assert_eq!(summary.e2e.count(), summary.admitted);
    assert_eq!(summary.oracle_failures, 0);
    check_admitted(&summary.history.expect("history"))
        .expect("history spanning both configurations is serialisable");
}

#[test]
fn status_document_reports_live_state() {
    let scenario = scenario();
    let workload = scenario.compile();
    let server = Server::for_scenario(&scenario, quick_config(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.addr(), "status").expect("connect");

    for txn in workload.transactions.iter().take(3) {
        assert!(client
            .submit_wait(&txn.name, txn.body.clone())
            .expect("settle")
            .is_settled());
    }
    let status = client.status().expect("status");
    assert_eq!(
        status.get("protocol").and_then(Json::as_int),
        Some(PROTOCOL_VERSION)
    );
    assert_eq!(status.get("sessions").and_then(Json::as_int), Some(1));
    assert!(status.get("admitted").and_then(Json::as_int) >= Some(3));
    let queue = status.get("queue").expect("queue block");
    assert!(queue.get("depth").and_then(Json::as_int).unwrap_or(0) > 0);
    assert_eq!(queue.get("draining").and_then(Json::as_bool), Some(false));
    let cfg = status.get("config").expect("config block");
    assert!(cfg.get("scheduler").is_some());
    assert!(
        status.get("metrics").is_some(),
        "live RunMetrics are embedded"
    );
    let e2e = status.get("serve_e2e_us").expect("latency block");
    assert!(e2e.get("count").and_then(Json::as_int) >= Some(3));
    for q in ["p50", "p99", "p999"] {
        assert!(e2e.get(q).is_some(), "{q} missing from {e2e}");
    }
    client.goodbye();
    server.shutdown();
}

#[test]
fn protocol_violations_get_typed_error_frames() {
    let scenario = scenario();
    let server = Server::for_scenario(&scenario, quick_config(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Not a hello: the server answers with a typed error, not a slammed door.
    let mut raw = TcpStream::connect(addr).expect("connect");
    wire::write_frame(&mut raw, &Frame::Status).expect("write");
    match wire::read_frame(&mut raw).expect("error frame") {
        Frame::Error { code, .. } => assert_eq!(code, "bad-hello"),
        other => panic!("expected an error frame, got {other:?}"),
    }
    drop(raw);

    // Wrong protocol version: same, with the version in the detail.
    let mut raw = TcpStream::connect(addr).expect("connect");
    wire::write_frame(
        &mut raw,
        &Frame::Hello {
            client: "time-traveller".into(),
            protocol: PROTOCOL_VERSION + 40,
        },
    )
    .expect("write");
    match wire::read_frame(&mut raw).expect("error frame") {
        Frame::Error { code, detail } => {
            assert_eq!(code, "bad-hello");
            assert!(detail.contains("not supported"), "detail: {detail}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    drop(raw);

    server.shutdown();
}

#[test]
fn invalid_transactions_are_rejected_with_reasons() {
    use obase::core::ids::ObjectId;
    use obase::core::value::Value;
    use obase::exec::{Expr, ObjRef, Program};

    let scenario = scenario();
    let workload = scenario.compile();
    let server = Server::for_scenario(&scenario, quick_config(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.addr(), "invalid").expect("connect");

    let cases: Vec<(&str, Program)> = vec![
        (
            "top-level local step",
            Program::Local {
                op: "Write".into(),
                args: vec![Expr::Const(Value::Int(1))],
            },
        ),
        (
            "unknown object",
            Program::Invoke {
                object: ObjRef::Const(ObjectId(u32::MAX)),
                method: "enq".into(),
                args: vec![],
            },
        ),
        (
            "unbound parameter",
            Program::Invoke {
                object: ObjRef::Param(0),
                method: "enq".into(),
                args: vec![],
            },
        ),
    ];
    for (what, body) in cases {
        match client.submit_wait(what, body).expect("frame") {
            SubmitOutcome::Rejected(RejectReason::Invalid(detail)) => {
                assert!(!detail.is_empty(), "{what}: empty reject detail")
            }
            other => panic!("{what}: expected an invalid reject, got {other:?}"),
        }
    }
    // The session survives its own bad submissions.
    let txn = &workload.transactions[0];
    assert!(client
        .submit_wait(&txn.name, txn.body.clone())
        .expect("settle")
        .is_settled());
    client.goodbye();
    let summary = server.shutdown();
    assert_eq!(
        summary.admitted, 1,
        "invalid submissions were never admitted"
    );
}
