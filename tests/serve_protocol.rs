//! Protocol golden tests: every frame round-trips byte-for-bit, and
//! malformed frames — torn at every byte offset, oversized, non-UTF-8,
//! unknown-tagged, corrupted at every byte — produce typed errors, never
//! panics. The torn-tail discipline of the WAL, applied to the socket.

use obase::core::ids::ObjectId;
use obase::core::value::Value;
use obase::exec::{Expr, ObjRef, Program};
use obase::serve::wire::{
    self, decode_frame, encode_frame, read_frame, value_from_json, value_to_json,
};
use obase::serve::{Frame, RejectReason, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
use obase_ser::Json;
use std::collections::BTreeMap;

/// A transaction body exercising every `Program`, `Expr` and `ObjRef`
/// shape the DSL has.
fn rich_body() -> Program {
    Program::Par(vec![
        Program::Invoke {
            object: ObjRef::Const(ObjectId(3)),
            method: "transfer".into(),
            args: vec![
                Expr::Const(Value::Int(-7)),
                Expr::Const(Value::Str("k1".into())),
            ],
        },
        Program::Seq(vec![
            Program::Invoke {
                object: ObjRef::Param(0),
                method: "audit".into(),
                args: vec![Expr::Param(1)],
            },
            Program::Local {
                op: "Write".into(),
                args: vec![Expr::Const(Value::List(vec![
                    Value::Unit,
                    Value::Bool(true),
                    Value::Obj(ObjectId(9)),
                    Value::Map(BTreeMap::from([("x".to_string(), Value::Int(1))])),
                ]))],
            },
        ]),
    ])
}

/// One of every frame type.
fn all_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            client: "golden".into(),
            protocol: PROTOCOL_VERSION,
        },
        Frame::Welcome {
            server: "obase-serve/test".into(),
            protocol: PROTOCOL_VERSION,
            objects: 12,
        },
        Frame::Submit {
            id: 42,
            name: "txn-0".into(),
            body: rich_body(),
        },
        Frame::Result {
            id: 42,
            committed: true,
            latency_us: 1234,
        },
        Frame::Reject {
            id: 7,
            reason: RejectReason::QueueFull { depth: 256 },
        },
        Frame::Reject {
            id: 8,
            reason: RejectReason::Draining,
        },
        Frame::Reject {
            id: 9,
            reason: RejectReason::Invalid("unknown method \"frob\"".into()),
        },
        Frame::Status,
        Frame::StatusReport {
            body: Json::object([("queue", Json::object([("len", Json::Int(3))]))]),
        },
        Frame::Reconcile {
            config: Json::object([("workers", Json::Int(8))]),
        },
        Frame::Reconciled {
            changed: vec!["workers".into(), "scheduler".into()],
        },
        Frame::Error {
            code: "bad-frame".into(),
            detail: "torn frame: 3 of 9 bytes".into(),
        },
        Frame::Goodbye,
    ]
}

#[test]
fn every_frame_round_trips_byte_for_bit() {
    for frame in all_frames() {
        let bytes = encode_frame(&frame);
        let (back, consumed) = decode_frame(&bytes)
            .unwrap_or_else(|e| panic!("{:?} failed to decode: {e}", frame.tag()));
        assert_eq!(consumed, bytes.len(), "{:?} left bytes behind", frame.tag());
        assert_eq!(back, frame, "{:?} changed in transit", frame.tag());
        // Byte-for-bit: re-encoding the decoded frame reproduces the
        // exact original bytes (the codec prints deterministically).
        assert_eq!(
            encode_frame(&back),
            bytes,
            "{:?} re-encode differs",
            frame.tag()
        );
    }
}

#[test]
fn values_round_trip_through_the_tagged_encoding() {
    let values = [
        Value::Unit,
        Value::Bool(false),
        Value::Int(i64::MIN),
        Value::Str(String::new()),
        Value::Str("nested \"quotes\" and \\ slashes\n".into()),
        Value::Obj(ObjectId(0)),
        Value::List(vec![Value::List(vec![Value::Int(1)]), Value::Unit]),
        Value::Map(BTreeMap::from([
            ("a".to_string(), Value::Map(BTreeMap::new())),
            ("b".to_string(), Value::Int(2)),
        ])),
    ];
    for v in values {
        let back = value_from_json(&value_to_json(&v)).expect("round trip");
        assert_eq!(back, v);
    }
}

#[test]
fn torn_frames_fail_typed_at_every_byte_offset() {
    for frame in all_frames() {
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).expect_err(&format!(
                "{:?} decoded from {cut} of {} bytes",
                frame.tag(),
                bytes.len()
            ));
            match (cut, err) {
                (0, WireError::Closed) => {}
                (c, WireError::Truncated { got, want }) => {
                    if c < 4 {
                        assert_eq!((got, want), (c, 4));
                    } else {
                        assert_eq!((got, want), (c - 4, bytes.len() - 4));
                    }
                }
                (c, other) => panic!("cut at {c}: unexpected error {other:?}"),
            }
        }
    }
}

#[test]
fn torn_frames_fail_typed_on_a_real_stream_too() {
    let bytes = encode_frame(&Frame::Status);
    for cut in 0..bytes.len() {
        let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
        let err = read_frame(&mut cursor).expect_err("torn stream decoded");
        assert!(
            matches!(err, WireError::Closed | WireError::Truncated { .. }),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
    let mut cursor = std::io::Cursor::new(bytes.clone());
    assert_eq!(read_frame(&mut cursor).expect("whole frame"), Frame::Status);
}

#[test]
fn oversized_length_prefixes_are_refused_before_allocation() {
    let mut bytes = (MAX_FRAME_LEN + 1).to_be_bytes().to_vec();
    bytes.extend_from_slice(b"{}");
    match decode_frame(&bytes) {
        Err(WireError::FrameTooLarge { len, max }) => {
            assert_eq!(len, MAX_FRAME_LEN + 1);
            assert_eq!(max, MAX_FRAME_LEN);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // Same through the streaming reader.
    let mut cursor = std::io::Cursor::new(bytes);
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::FrameTooLarge { .. })
    ));
}

#[test]
fn non_utf8_payloads_are_typed_errors() {
    let payload = [0xffu8, 0xfe, 0x80];
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&payload);
    assert!(matches!(decode_frame(&bytes), Err(WireError::BadUtf8(_))));
}

#[test]
fn bad_json_payloads_are_typed_errors() {
    for text in ["{\"t\":", "", "[1,2", "nope", "{\"t\" \"hello\"}"] {
        let mut bytes = (text.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(text.as_bytes());
        assert!(
            matches!(decode_frame(&bytes), Err(WireError::BadJson(_))),
            "{text:?} was not BadJson"
        );
    }
}

#[test]
fn unknown_tags_and_malformed_fields_are_typed_errors() {
    let cases = [
        ("{\"t\":\"warble\"}", "unknown tag"),
        ("{\"client\":\"x\"}", "missing tag"),
        ("[]", "not an object"),
        ("{\"t\":\"submit\",\"id\":1}", "submit without body"),
        (
            "{\"t\":\"submit\",\"id\":-3,\"name\":\"x\",\"body\":[\"seq\",[]]}",
            "negative id",
        ),
        (
            "{\"t\":\"result\",\"id\":1,\"latency_us\":2}",
            "result without committed",
        ),
        (
            "{\"t\":\"reject\",\"id\":1,\"reason\":{\"kind\":\"meh\"}}",
            "unknown reject kind",
        ),
        (
            "{\"t\":\"submit\",\"id\":1,\"name\":\"x\",\"body\":[\"invoke\",[\"o\",1],\"m\"]}",
            "invoke without args",
        ),
    ];
    for (text, what) in cases {
        let mut bytes = (text.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(text.as_bytes());
        match decode_frame(&bytes) {
            Err(WireError::UnknownTag(_) | WireError::BadFrame(_)) => {}
            other => panic!("{what}: expected a typed decode error, got {other:?}"),
        }
    }
}

/// Flipping any single byte of a valid frame must never panic: the codec
/// either still decodes (a flip inside a string constant, say) or lands
/// in a typed error.
#[test]
fn corrupting_any_single_byte_never_panics() {
    for frame in all_frames() {
        let bytes = encode_frame(&frame);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= flip;
                // Either verdict is acceptable; reaching the next
                // iteration is the assertion.
                let _ = decode_frame(&corrupt);
            }
        }
    }
}

#[test]
fn program_codec_rejects_unknown_shapes() {
    for text in [
        "[\"goto\",[]]",
        "[\"local\",\"Read\"]",
        "[\"invoke\",[\"q\",1],\"m\",[]]",
        "[\"seq\",3]",
        "[]",
        "7",
    ] {
        let json = Json::parse(text).expect("valid JSON");
        assert!(
            wire::program_from_json(&json).is_err(),
            "{text:?} decoded as a program"
        );
    }
}
