//! The MVCC snapshot read path's acceptance gates.
//!
//! The fast path must be *free* correctness-wise: every run with snapshots
//! on — any backend, any seed — passes the same serialisability oracle as
//! the scheduled path (legality, Theorem 2 with witness, Theorem 5), with
//! the snapshot transactions' reads serialised at their pinned commit
//! watermark. And it must be *invisible* when off: the `.mvcc(false)`
//! baseline is bit-for-bit the run the knob's introduction never touched.

use obase::exec::VersionedStore;
use obase::prelude::*;
use obase::scenario::{self, Scenario};

mod common;
use common::worker_counts;

fn read_mix_scenarios() -> Vec<Scenario> {
    ["read-mostly-dict", "read-only-rush"]
        .iter()
        .map(|n| scenario::by_name(n).expect("built-in"))
        .collect()
}

/// Both in-memory backends, both read-mix scenarios, snapshots on: the full
/// oracle passes and the fast path demonstrably absorbed transactions.
#[test]
fn snapshot_runs_pass_the_oracle_on_both_in_memory_backends() {
    for s in read_mix_scenarios() {
        let spec = &s.specs[0];
        let mut backends = vec![ExecutionBackend::Simulated];
        for w in worker_counts(&[1, 4]) {
            backends.push(ExecutionBackend::Parallel { workers: w });
        }
        for backend in backends {
            let label = backend.label();
            let report = s
                .run_with(spec, backend, Observe::Off, true)
                .unwrap_or_else(|e| panic!("{}/{label}: {e}", s.name));
            assert!(!report.metrics.timed_out, "{}/{label} timed out", s.name);
            report.assert_serialisable();
            assert!(
                report.metrics.read_only_txns > 0,
                "{}/{label}: no transaction took the snapshot path",
                s.name
            );
            assert!(
                report.metrics.snapshot_reads > 0,
                "{}/{label}: snapshot transactions performed no reads",
                s.name
            );
            assert!(
                report.metrics.committed >= report.metrics.read_only_txns,
                "{}/{label}: snapshot commits not counted as commits",
                s.name
            );
        }
    }
}

/// A 100-seed sweep on the simulator: the snapshot path holds the oracle
/// under every interleaving/workload the seed stream produces.
#[test]
fn hundred_seed_sweep_holds_the_oracle() {
    let base = scenario::by_name("read-only-rush").expect("built-in");
    let spec = base.specs[0].clone();
    let mut absorbed = 0u64;
    for i in 0..100u64 {
        let mut s = base.clone();
        s.seed = 2_000 + i;
        let report = s
            .run_with(&spec, ExecutionBackend::Simulated, Observe::Off, true)
            .unwrap_or_else(|e| panic!("seed {}: {e}", s.seed));
        report.assert_serialisable();
        absorbed += report.metrics.snapshot_reads;
    }
    assert!(absorbed > 0, "no seed produced a snapshot read");
}

/// With the knob off, the baseline is bit-for-bit untouched: same rounds,
/// same commits, same installed steps, same history sizes as a runtime that
/// never heard of MVCC.
#[test]
fn mvcc_off_is_the_exact_baseline() {
    for s in read_mix_scenarios() {
        let spec = &s.specs[0];
        let plain = s.run(spec, ExecutionBackend::Simulated).unwrap();
        let off = s
            .run_with(spec, ExecutionBackend::Simulated, Observe::Off, false)
            .unwrap();
        assert_eq!(plain.metrics.rounds, off.metrics.rounds, "{}", s.name);
        assert_eq!(plain.metrics.committed, off.metrics.committed, "{}", s.name);
        assert_eq!(plain.metrics.aborts, off.metrics.aborts, "{}", s.name);
        assert_eq!(
            plain.metrics.installed_steps, off.metrics.installed_steps,
            "{}",
            s.name
        );
        assert_eq!(
            plain.history.step_count(),
            off.history.step_count(),
            "{}",
            s.name
        );
        assert_eq!(off.metrics.snapshot_reads, 0, "{}", s.name);
        assert_eq!(off.metrics.read_only_txns, 0, "{}", s.name);
    }
}

/// Snapshots on, the simulator stays a pure function of the seed.
#[test]
fn mvcc_on_is_deterministic_on_the_simulator() {
    let s = scenario::by_name("read-mostly-dict").expect("built-in");
    let spec = &s.specs[0];
    let a = s
        .run_with(spec, ExecutionBackend::Simulated, Observe::Off, true)
        .unwrap();
    let b = s
        .run_with(spec, ExecutionBackend::Simulated, Observe::Off, true)
        .unwrap();
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
    assert_eq!(a.metrics.committed, b.metrics.committed);
    assert_eq!(a.metrics.snapshot_reads, b.metrics.snapshot_reads);
    assert_eq!(a.metrics.read_only_txns, b.metrics.read_only_txns);
    assert_eq!(a.history.step_count(), b.history.step_count());
}

/// The durable backend takes the same fast path (snapshot records go
/// through the WAL) and its recovered history passes the oracle.
#[test]
fn durable_backend_snapshots_and_recovers() {
    let dir = obase::wal::scratch_dir("mvcc-durable");
    let s = scenario::by_name("read-mostly-dict").expect("built-in");
    let workload = s.compile();
    let runtime = Runtime::builder()
        .scheduler(s.specs[0].clone())
        .clients(s.clients)
        .seed(s.seed)
        .retries(s.retries)
        .mvcc(true)
        .backend(ExecutionBackend::Durable {
            dir: dir.clone(),
            group_commit: 4,
        })
        .verify(Verify::Full)
        .build()
        .unwrap();
    let report = runtime.run(&workload).unwrap();
    report.assert_serialisable();
    assert!(
        report.metrics.snapshot_reads > 0,
        "wal run took no snapshots"
    );

    let recovered = obase::wal::WalBackend::new(std::sync::Arc::clone(workload.def.base()))
        .recover(&dir)
        .unwrap();
    recovered.assert_serialisable();
    assert_eq!(recovered.committed.len(), report.metrics.committed);
    std::fs::remove_dir_all(&dir).ok();
}

/// Watermark pinning through the public API: a long-running snapshot keeps
/// the version it reads alive while newer commits land; releasing the pin
/// lets GC reclaim, and an unpinned write-heavy loop keeps chains bounded.
#[test]
fn pins_hold_versions_and_gc_reclaims() {
    use obase::core::ids::{ExecId, StepId};
    use obase::core::object::ObjectBase;
    use obase::core::op::Operation;
    use obase::core::value::Value;
    use std::sync::Arc;

    let mut base = ObjectBase::new();
    let x = base.add_object("x", Arc::new(obase::adt::Register::default()));
    let mut vs = VersionedStore::new(Arc::new(base));

    let commit_write = |vs: &mut VersionedStore, e: u32, v: i64| {
        vs.note_install(
            ExecId(e),
            x,
            StepId(e),
            Operation::unary("Write", v),
            Value::Unit,
        );
        vs.note_commit(ExecId(e));
    };

    commit_write(&mut vs, 1, 10);
    let pin = vs.pin(); // a long-running snapshot starts here
    for e in 2..30 {
        commit_write(&mut vs, e, i64::from(e));
    }
    // The pinned version survives the churn and still reads its value.
    assert_eq!(vs.read(x, pin).0, &Value::Int(10));
    assert!(
        vs.chain_len(x) > 1,
        "newer committed versions must accumulate while the pin holds"
    );
    vs.unpin(pin);
    // With no active snapshot, only the newest version is reachable.
    assert_eq!(vs.chain_len(x), 1, "GC must reclaim once the pin is gone");
    // Write-heavy loop without pins: the chain never grows.
    for e in 30..1030 {
        commit_write(&mut vs, e, i64::from(e));
        assert!(vs.chain_len(x) <= 2, "chain unbounded at exec {e}");
    }
    assert_eq!(vs.active_pins(), 0);
}
