//! Helpers shared by the integration-test binaries.

/// Worker counts a parallel sweep uses. CI overrides via
/// `OBASE_EQUIV_WORKERS` (comma-separated, e.g. `OBASE_EQUIV_WORKERS=1`) to
/// pin a whole suite to one count per job, so single-worker degeneracy and
/// high-contention paths are exercised in separate jobs on every push.
pub fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("OBASE_EQUIV_WORKERS") {
        Ok(list) => list
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .expect("OBASE_EQUIV_WORKERS takes comma-separated positive integers")
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}
