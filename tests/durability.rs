//! Kill-at-any-point durability: the write-ahead-logged backend's recovery
//! contract under crashes.
//!
//! A crash is modelled by cutting the log a durable run wrote at an
//! arbitrary byte offset (usually mid-record) — exactly what a power cut
//! leaves on disk — optionally with a corrupted byte under the torn tail.
//! The contract recovery must honour at *every* cut point:
//!
//! 1. it never panics and never errors on log content (only on I/O);
//! 2. the recovered history passes the full Definition-3 oracle (legal,
//!    acyclic serialisation graph, per-object condition, replayable final
//!    states);
//! 3. no uncommitted transaction is resurrected: every recovered commit has
//!    a `CommitTop` record in the surviving prefix and no `Abort` record —
//!    recovery may roll *back* more (a crash can expose a dirty read), but
//!    never forward;
//! 4. cutting exactly at a frame boundary loses nothing relative to that
//!    prefix: recovery equals a run of the shorter log.

use obase::prelude::*;
use obase::wal::{self, WalBackend, WalRecord};
use obase::workload as wl;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Three workload shapes with different nesting and conflict structure, so
/// the crash points land in transfers (nested invokes), queue steps and
/// keyed dictionary traffic.
fn workloads() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "banking",
            wl::banking(&wl::BankingParams {
                accounts: 4,
                transactions: 10,
                skew: 0.8,
                seed: 41,
                ..Default::default()
            }),
        ),
        (
            "queues",
            wl::queues(&wl::QueueParams {
                queues: 2,
                producers: 6,
                consumers: 6,
                preload: 4,
                seed: 42,
            }),
        ),
        (
            "dictionary",
            wl::dictionary(&wl::DictionaryParams {
                dictionaries: 2,
                keys: 6,
                transactions: 10,
                ops_per_txn: 3,
                lookup_fraction: 0.3,
                key_skew: 0.9,
                seed: 43,
            }),
        ),
    ]
}

/// Runs a workload on the durable backend and returns the raw log bytes.
fn durable_log_bytes(workload: &WorkloadSpec, seed: u64) -> Vec<u8> {
    let dir = wal::scratch_dir("durability-ref");
    let report = Runtime::builder()
        .scheduler(SchedulerSpec::n2pl_operation())
        .backend(ExecutionBackend::Durable {
            dir: dir.clone(),
            group_commit: 8,
        })
        .seed(seed)
        .retries(64)
        .verify(Verify::Quick)
        .build()
        .expect("valid durable configuration")
        .run(workload)
        .expect("well-formed generated workload");
    report.assert_serialisable();
    let bytes = std::fs::read(wal::log_path(&dir)).expect("the run left a log");
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

/// Materialises the first `cut` bytes of a log as a fresh directory — the
/// disk image a crash at that offset leaves behind.
fn crashed_dir(bytes: &[u8], cut: usize) -> PathBuf {
    let dir = wal::scratch_dir("durability-cut");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(wal::log_path(&dir), &bytes[..cut]).unwrap();
    dir
}

/// The commit set the surviving log prefix actually promises: tops with a
/// `CommitTop` record and no `Abort` record. Computed from the raw frames,
/// independently of the recovery code under test.
fn logged_commits(dir: &Path) -> BTreeSet<ExecId> {
    let scan = wal::log::scan(&wal::log_path(dir)).expect("log readable");
    let mut committed = BTreeSet::new();
    let mut aborted = BTreeSet::new();
    for r in &scan.records {
        match r {
            WalRecord::CommitTop { exec } => {
                committed.insert(*exec);
            }
            WalRecord::Abort { exec } => {
                aborted.insert(*exec);
            }
            _ => {}
        }
    }
    committed.difference(&aborted).copied().collect()
}

/// Recovers a crashed directory and checks the per-cut contract; returns
/// the number of crash roll-backs.
fn recover_and_check(workload: &WorkloadSpec, dir: &Path, what: &str) -> u64 {
    let recovered = WalBackend::new(workload.def.base().clone())
        .recover(dir)
        .unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
    recovered.assert_serialisable();
    // No resurrection: recovery's committed set is bounded by what the
    // surviving prefix promised.
    let promised = logged_commits(dir);
    for top in &recovered.committed {
        assert!(
            promised.contains(top),
            "{what}: recovery resurrected {top:?} without a logged commit"
        );
    }
    // Every transaction is accounted for: a recovered top is committed or
    // rolled back, never both.
    for top in &recovered.committed {
        assert!(
            !recovered.rolled_back.contains(top),
            "{what}: {top:?} both committed and rolled back"
        );
    }
    recovered.crash_rollbacks()
}

/// The kill-at-any-point sweep: ≥50 seeded crash offsets across the three
/// workload shapes, every cut recovered and held to the full oracle, plus a
/// byte-corruption variant at every fourth point. Prints the summary lines
/// CI greps for.
#[test]
fn kill_at_any_point_recovery_passes_the_oracle() {
    const CUTS_PER_WORKLOAD: usize = 20;
    let mut total = 0usize;
    let mut corrupted = 0usize;
    let mut rollbacks = 0u64;
    let mut histogram: std::collections::BTreeMap<String, u64> = Default::default();
    for (name, workload) in &workloads() {
        let bytes = durable_log_bytes(workload, 7);
        // A seeded multiplicative generator spreads the cut points over the
        // whole file, deterministically per workload.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15 ^ (name.len() as u64);
        for i in 0..CUTS_PER_WORKLOAD {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cut = (state % (bytes.len() as u64 + 1)) as usize;
            let dir = crashed_dir(&bytes, cut);
            let what = format!("{name} cut at {cut}/{}", bytes.len());
            // Every fourth point also flips a byte under the surviving
            // prefix — a bad sector beneath the torn tail.
            if i % 4 == 3 && cut > 0 {
                let offset = (state >> 32) % cut as u64;
                wal::crash::corrupt_log_byte(&dir, offset).unwrap();
                corrupted += 1;
            }
            rollbacks += recover_and_check(workload, &dir, &what);
            let recovered = WalBackend::new(workload.def.base().clone())
                .recover(&dir)
                .unwrap();
            for (reason, n) in recovered.aborts_by_reason() {
                *histogram.entry(reason).or_default() += n;
            }
            std::fs::remove_dir_all(&dir).ok();
            total += 1;
        }
    }
    assert!(total >= 50, "only {total} crash points exercised");
    assert!(
        rollbacks > 0,
        "no cut ever landed mid-transaction — the sweep is not biting"
    );
    assert!(histogram.contains_key("crash_rollback"));
    println!("kill-at-any-point: {total} crash points ({corrupted} with byte corruption), recovered oracle passed at every point");
    println!("aborts_by_reason: {histogram:?}");
}

/// Satellite: the torn-tail sweep at byte granularity. A valid log is cut at
/// *every* byte offset of its final record; recovery must never panic, must
/// flag the tail as torn (except at the clean boundary) and must equal the
/// recovery of the log without that record — byte-partial records carry no
/// information.
#[test]
fn torn_tail_at_every_byte_offset_of_the_last_record() {
    let workload = wl::counters(&wl::CounterParams {
        counters: 2,
        transactions: 6,
        touches_per_txn: 2,
        read_fraction: 0.2,
        skew: 0.5,
        seed: 11,
    });
    let bytes = durable_log_bytes(&workload, 11);
    let full_dir = crashed_dir(&bytes, bytes.len());
    let scan = wal::log::scan(&wal::log_path(&full_dir)).unwrap();
    std::fs::remove_dir_all(&full_dir).ok();
    assert!(!scan.torn, "reference log must be clean");
    let ends = &scan.frame_ends;
    assert!(ends.len() >= 2, "need at least two records");
    let last_start = ends[ends.len() - 2] as usize;
    let last_end = ends[ends.len() - 1] as usize;
    assert_eq!(last_end, bytes.len());

    // The expected outcome for every partial cut: whatever the log without
    // its final record recovers to.
    let boundary_dir = crashed_dir(&bytes, last_start);
    let expected = WalBackend::new(workload.def.base().clone())
        .recover(&boundary_dir)
        .expect("boundary prefix recovers");
    std::fs::remove_dir_all(&boundary_dir).ok();

    for cut in last_start..last_end {
        let dir = crashed_dir(&bytes, cut);
        let recovered = WalBackend::new(workload.def.base().clone())
            .recover(&dir)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        recovered.assert_serialisable();
        assert_eq!(
            recovered.torn,
            cut != last_start,
            "cut at {cut}: torn flag wrong"
        );
        assert_eq!(
            recovered.committed, expected.committed,
            "cut at {cut}: a byte-partial record changed the committed set"
        );
        assert_eq!(recovered.records, expected.records);
        assert_eq!(
            recovered.final_states, expected.final_states,
            "cut at {cut}: partial tail leaked into the recovered state"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    println!(
        "torn-tail sweep: {} byte offsets of the final record, recovery stable at every one",
        last_end - last_start
    );
}

/// The crash helpers behave as the scenario `CrashPlan` documents them:
/// `truncate_log_fraction` cuts proportionally and `corrupt_log_byte` makes
/// the scan stop at (or before) the damaged frame.
#[test]
fn crash_helpers_drive_scenario_crash_plans() {
    let s = obase::scenario::by_name("hot-queue").expect("library scenario");
    let plan = obase::scenario::CrashPlan {
        fraction: 0.5,
        corrupt: true,
    };
    let dir = wal::scratch_dir("durability-plan");
    let report = s
        .run(
            &s.specs[0],
            ExecutionBackend::Durable {
                dir: dir.clone(),
                group_commit: 8,
            },
        )
        .expect("scenario runs durably");
    report.assert_serialisable();
    let full = wal::crash::log_len(&dir).unwrap();
    let cut = wal::crash::truncate_log_fraction(&dir, plan.fraction).unwrap();
    assert!(cut <= full && cut >= full / 2 - 1, "cut {cut} of {full}");
    if plan.corrupt && cut > 0 {
        wal::crash::corrupt_log_byte(&dir, cut / 2).unwrap();
    }
    let base = s.compile().def.base().clone();
    let recovered = WalBackend::new(base).recover(&dir).expect("recovers");
    recovered.assert_serialisable();
    let promised = logged_commits(&dir);
    for top in &recovered.committed {
        assert!(promised.contains(top));
    }
    println!(
        "scenario crash plan: cut {cut}/{full} bytes, {} committed survived, {} crash_rollback",
        recovered.committed.len(),
        recovered.crash_rollbacks()
    );
    std::fs::remove_dir_all(&dir).ok();
}
