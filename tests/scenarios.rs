//! The scenario engine's acceptance gates.
//!
//! Every library scenario must (1) be exactly reproducible per seed on the
//! simulated backend — the workload compiler *and* the fault injector draw
//! from seeded streams — and (2) pass the full serialisability oracle
//! (legality, Theorem 2 with witness, Theorem 5) on both backends, the
//! parallel one across worker counts {1, 2, 8}. Fault plans must provably
//! fire: injected dooms land in the `"injected"` bucket of the abort-reason
//! histogram.

use obase::prelude::*;
use obase::scenario;

mod common;
use common::worker_counts;

/// Property-style seeded loop: on the simulator, a scenario is a pure
/// function of its seed — same metrics, same history, run after run — and
/// perturbing the seed genuinely changes the run (the compiler is not
/// ignoring it).
#[test]
fn library_scenarios_are_deterministic_per_seed_on_the_simulator() {
    for s in scenario::library() {
        let spec = &s.specs[0];
        let a = s.run(spec, ExecutionBackend::Simulated).unwrap();
        let b = s.run(spec, ExecutionBackend::Simulated).unwrap();
        for report in [&a, &b] {
            assert!(!report.metrics.timed_out, "{} timed out", s.name);
            report.assert_serialisable();
        }
        assert_eq!(a.metrics.rounds, b.metrics.rounds, "{}", s.name);
        assert_eq!(a.metrics.committed, b.metrics.committed, "{}", s.name);
        assert_eq!(a.metrics.aborts, b.metrics.aborts, "{}", s.name);
        assert_eq!(
            a.metrics.aborts_by_reason, b.metrics.aborts_by_reason,
            "{}",
            s.name
        );
        assert_eq!(
            a.metrics.installed_steps, b.metrics.installed_steps,
            "{}",
            s.name
        );
        assert_eq!(a.history.step_count(), b.history.step_count(), "{}", s.name);

        // A different seed is a different workload: some generated
        // transaction body (object pick, key, method variant) must change.
        let mut reseeded = s.clone();
        reseeded.seed ^= 0xDEAD_BEEF;
        let original = s.compile();
        let perturbed = reseeded.compile();
        assert!(
            original
                .transactions
                .iter()
                .zip(&perturbed.transactions)
                .any(|(x, y)| x.body != y.body),
            "{}: reseeding left every transaction body unchanged",
            s.name
        );
    }
}

/// The backend-equivalence oracle over the whole scenario library: every
/// scenario × every spec it names × the simulator and the parallel backend
/// at workers {1, 2, 8}, every history past the full theory oracle.
#[test]
fn equivalence_oracle_over_the_scenario_library() {
    let workers = worker_counts(&[1, 2, 8]);
    for s in scenario::library() {
        for spec in &s.specs {
            let backends = std::iter::once(ExecutionBackend::Simulated).chain(
                workers
                    .iter()
                    .map(|&w| ExecutionBackend::Parallel { workers: w }),
            );
            for backend in backends {
                let report = s
                    .run(spec, backend.clone())
                    .unwrap_or_else(|e| panic!("{} failed to run: {e}", s.name));
                assert!(
                    !report.metrics.timed_out,
                    "{} [{}] timed out: {}",
                    s.name,
                    backend.label(),
                    report.summary()
                );
                report.assert_serialisable();
                // Every settled transaction is accounted for.
                assert_eq!(
                    report.metrics.committed + report.metrics.gave_up,
                    report.metrics.submitted,
                    "{} [{}] lost transactions: {}",
                    s.name,
                    backend.label(),
                    report.summary()
                );
            }
        }
    }
}

/// The fault plan provably fires: chaos scenarios show injected dooms in
/// the abort-reason histogram, and retries still drive (almost) everything
/// to commit.
#[test]
fn fault_plans_leave_an_injected_histogram_trail() {
    for name in ["abort-storm", "injected-dooms"] {
        let s = scenario::by_name(name).expect("library scenario");
        let report = s
            .run(&s.specs[0], ExecutionBackend::Simulated)
            .expect("runs");
        report.assert_serialisable();
        let injected = report
            .metrics
            .aborts_by_reason
            .get("injected")
            .copied()
            .unwrap_or(0);
        assert!(
            injected > 0,
            "{name}: no injected aborts recorded ({:?})",
            report.metrics.aborts_by_reason
        );
        assert!(
            report.metrics.committed > 0,
            "{name}: chaos starved every transaction"
        );
    }
}

/// A scenario authored as JSON (the docs/SCENARIOS.md walkthrough example)
/// parses, compiles and passes the oracle on both backends.
#[test]
fn handwritten_json_scenario_runs_end_to_end() {
    let text = r#"{
        "name": "two-tills",
        "seed": 7,
        "transactions": 12,
        "clients": 3,
        "retries": 16,
        "groups": [
            {"name": "tills", "adt": "account", "objects": 2, "keys": 0},
            {"name": "ledger", "adt": "btree", "objects": 1, "keys": 16}
        ],
        "mix": [
            {"name": "sale", "weight": 3, "group": "tills", "ops": 2,
             "read_fraction": 0.25,
             "dist": {"kind": "hot-key", "theta": 1.0},
             "nesting": {"depth": 1, "width": 2, "parallel": true}},
            {"name": "audit", "weight": 1, "group": "ledger", "ops": 2,
             "read_fraction": 0.75,
             "dist": {"kind": "uniform"},
             "nesting": {"depth": 1, "width": 1, "parallel": false}}
        ],
        "faults": {"doom_rate": 0.05, "storm": null,
                   "stall_rate": 0.0, "stall_ticks": 0, "deadline_ms": null},
        "specs": [{"kind": "n2pl", "granularity": "operation"}]
    }"#;
    let s = scenario::Scenario::parse(text).expect("the walkthrough example must stay valid");
    for backend in [
        ExecutionBackend::Simulated,
        ExecutionBackend::Parallel { workers: 2 },
    ] {
        let report = s.run(&s.specs[0], backend).expect("runs");
        assert!(!report.metrics.timed_out);
        report.assert_serialisable();
    }
}
