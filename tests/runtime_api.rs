//! Integration tests of the `Runtime` facade: spec round-trips and
//! instantiation for every variant, builder validation, and determinism of
//! `RunReport` across repeated runs with the same seed.

use obase::prelude::*;
use obase::workload as wl;

fn every_spec() -> Vec<SchedulerSpec> {
    let mut specs = SchedulerSpec::all_basic();
    specs.push(SchedulerSpec::None);
    specs.push(SchedulerSpec::mixed_with_default(SchedulerSpec::n2pl_step()));
    specs.push(SchedulerSpec::Mixed {
        default_intra: Some(Box::new(SchedulerSpec::flat_read_write())),
        per_object: vec![
            (ObjectId(0), SchedulerSpec::n2pl_step()),
            (ObjectId(1), SchedulerSpec::nto_provisional()),
        ],
    });
    specs
}

#[test]
fn every_spec_round_trips_through_json_and_instantiates() {
    let registry = SchedulerRegistry::with_builtins();
    for spec in every_spec() {
        let text = spec.to_json_string();
        let parsed = SchedulerSpec::parse(&text).expect("round-trip parses");
        assert_eq!(parsed, spec, "round-trip changed {text}");
        let scheduler = registry
            .instantiate(&parsed)
            .expect("every built-in spec instantiates");
        assert!(!scheduler.name().is_empty());
    }
}

#[test]
fn every_spec_runs_a_workload_through_the_runtime() {
    let workload = wl::counters(&wl::CounterParams {
        counters: 2,
        transactions: 6,
        touches_per_txn: 2,
        read_fraction: 0.0,
        skew: 0.5,
        seed: 11,
    });
    for spec in every_spec() {
        let report = Runtime::builder()
            .scheduler(spec.clone())
            .clients(3)
            .seed(11)
            .verify(Verify::Quick)
            .build()
            .unwrap()
            .run(&workload)
            .unwrap();
        assert_eq!(
            report.metrics.committed + report.metrics.gave_up,
            6,
            "{}: transactions lost",
            report.scheduler
        );
        assert_eq!(report.spec, spec);
        // Quick verification records legality + Theorem 2 but not Theorem 5.
        assert!(report.checks.legal.is_some());
        assert!(report.checks.sg_acyclic.is_some());
        assert_eq!(report.checks.theorem5, None);
    }
}

#[test]
fn builder_rejects_bad_configurations_with_typed_errors() {
    assert_eq!(
        Runtime::builder().build().unwrap_err(),
        ConfigError::MissingScheduler
    );
    assert_eq!(
        Runtime::builder()
            .scheduler(SchedulerSpec::n2pl_operation())
            .clients(0)
            .build()
            .unwrap_err(),
        ConfigError::ZeroClients
    );
    assert_eq!(
        Runtime::builder()
            .scheduler(SchedulerSpec::n2pl_operation())
            .max_rounds(0)
            .build()
            .unwrap_err(),
        ConfigError::ZeroMaxRounds
    );
    assert_eq!(
        Runtime::builder()
            .scheduler(SchedulerSpec::Mixed {
                default_intra: None,
                per_object: vec![],
            })
            .build()
            .unwrap_err(),
        ConfigError::EmptyMixedSpec
    );
    // Errors render usefully.
    assert!(ConfigError::ZeroClients.to_string().contains("clients"));
    let err: Box<dyn std::error::Error> = Box::new(ConfigError::EmptyMixedSpec);
    assert!(err.to_string().contains("SgtCertifier"));
}

#[test]
fn reports_are_deterministic_for_a_seed() {
    let workload = wl::banking(&wl::BankingParams {
        accounts: 4,
        transactions: 12,
        skew: 0.8,
        ..Default::default()
    });
    let run = |seed: u64| {
        Runtime::builder()
            .scheduler(SchedulerSpec::n2pl_step())
            .clients(4)
            .seed(seed)
            .verify(Verify::Full)
            .build()
            .unwrap()
            .run(&workload)
            .unwrap()
    };
    let mut a = run(99);
    let mut b = run(99);
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
    assert_eq!(a.metrics.committed, b.metrics.committed);
    assert_eq!(a.metrics.blocked_events, b.metrics.blocked_events);
    assert_eq!(a.metrics.aborts, b.metrics.aborts);
    assert_eq!(a.history.step_count(), b.history.step_count());
    assert_eq!(a.checks, b.checks);
    // The serialised report (spec + metrics + checks + history sizes) is
    // bit-identical too, once the one physical (non-logical) measurement —
    // wall-clock time — is normalised away.
    a.metrics.wall_micros = 0;
    b.metrics.wall_micros = 0;
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    // A different seed interleaves differently (counters may coincide, but
    // the full serialised report rarely does; this seed pair differs).
    let mut c = run(100);
    c.metrics.wall_micros = 0;
    assert_ne!(a.to_json().to_string(), c.to_json().to_string());
}

#[test]
fn null_scheduler_is_the_negative_control() {
    // Two transactions writing two registers in opposite orders under no
    // concurrency control at all: with enough seeds one interleaving is
    // non-serialisable, and the report's checks say so while the metrics
    // still count the commits.
    use obase::adt::Register;
    use std::sync::Arc;

    let mut found_violation = false;
    for seed in 0..40u64 {
        let mut base = ObjectBase::new();
        let x = base.add_object("x", Arc::new(Register::default()));
        let y = base.add_object("y", Arc::new(Register::default()));
        let mut def = ObjectBaseDef::new(Arc::new(base));
        for o in [x, y] {
            def.define_method(
                o,
                MethodDef {
                    name: "set".into(),
                    params: 1,
                    body: Program::Local {
                        op: "Write".into(),
                        args: vec![Expr::Param(0)],
                    },
                },
            );
        }
        let workload = WorkloadSpec {
            def,
            transactions: vec![
                TxnSpec {
                    name: "T0".into(),
                    body: Program::Seq(vec![
                        Program::invoke(x, "set", [Value::Int(1)]),
                        Program::invoke(y, "set", [Value::Int(1)]),
                    ]),
                },
                TxnSpec {
                    name: "T1".into(),
                    body: Program::Seq(vec![
                        Program::invoke(y, "set", [Value::Int(2)]),
                        Program::invoke(x, "set", [Value::Int(2)]),
                    ]),
                },
            ],
        };
        let report = Runtime::builder()
            .scheduler(SchedulerSpec::None)
            .clients(2)
            .seed(seed)
            .verify(Verify::Full)
            .build()
            .unwrap()
            .run(&workload)
            .unwrap();
        if report.checks.sg_acyclic == Some(false) {
            found_violation = true;
            assert!(matches!(
                report.check_serialisable(),
                Err(TheoryViolation::CyclicSerialisationGraph { .. })
            ));
            assert!(!report.checks.all_passed());
            break;
        }
    }
    assert!(
        found_violation,
        "the null scheduler should admit a non-serialisable interleaving"
    );
}
