//! End-to-end integration tests: every scheduler spec, every workload
//! generator, run through the `Runtime` facade with post-hoc verification of
//! the committed history against the paper's theorems.

use obase::prelude::*;
use obase::workload as wl;

/// The full line-up: every basic algorithm plus the Section 2 mixture.
fn specs() -> Vec<SchedulerSpec> {
    let mut specs = SchedulerSpec::all_basic();
    specs.push(SchedulerSpec::mixed_with_default(SchedulerSpec::n2pl_step()));
    specs
}

fn runtime(spec: SchedulerSpec, seed: u64) -> Runtime {
    Runtime::builder()
        .scheduler(spec)
        .clients(4)
        .seed(seed)
        .verify(Verify::Full)
        .build()
        .expect("valid configuration")
}

fn verify(report: &RunReport) {
    report.assert_serialisable();
    assert!(
        !report.metrics.timed_out,
        "{}: run timed out",
        report.scheduler
    );
    assert_eq!(report.checks.legal, Some(true));
    assert_eq!(report.checks.sg_acyclic, Some(true));
    assert_eq!(report.checks.theorem5, Some(true));
}

#[test]
fn banking_under_every_scheduler_is_serialisable() {
    let workload = wl::banking(&wl::BankingParams {
        accounts: 6,
        transactions: 24,
        skew: 0.6,
        ..Default::default()
    });
    for spec in specs() {
        let report = runtime(spec, 101).run(&workload).unwrap();
        verify(&report);
        assert!(
            report.metrics.committed + report.metrics.gave_up == 24,
            "{}: every transaction either commits or exhausts its retries",
            report.scheduler
        );
    }
}

#[test]
fn banking_under_every_scheduler_on_the_parallel_backend() {
    // The same end-to-end gauntlet on the multi-threaded backend: real
    // threads, real blocking, same theorems (the dedicated 100-seed oracle
    // lives in tests/backend_equivalence.rs).
    let workload = wl::banking(&wl::BankingParams {
        accounts: 6,
        transactions: 24,
        skew: 0.6,
        ..Default::default()
    });
    for spec in specs() {
        let report = Runtime::builder()
            .scheduler(spec)
            .backend(ExecutionBackend::Parallel { workers: 4 })
            .retries(64)
            .verify(Verify::Full)
            .build()
            .expect("valid configuration")
            .run(&workload)
            .unwrap();
        verify(&report);
        assert!(
            report.metrics.committed + report.metrics.gave_up == 24,
            "{}: every transaction either commits or exhausts its retries",
            report.scheduler
        );
    }
}

#[test]
fn counters_under_every_scheduler_preserve_the_sum() {
    let workload = wl::counters(&wl::CounterParams {
        counters: 4,
        transactions: 20,
        touches_per_txn: 2,
        read_fraction: 0.0,
        skew: 1.0,
        seed: 7,
    });
    for spec in specs() {
        let report = runtime(spec, 7).run(&workload).unwrap();
        verify(&report);
        // Each committed transaction adds exactly 2 across the counters.
        let finals = obase::core::replay::final_states(&report.history).unwrap();
        let total: i64 = finals.values().filter_map(Value::as_int).sum();
        assert_eq!(
            total,
            2 * report.metrics.committed as i64,
            "{}: increments lost or duplicated",
            report.scheduler
        );
    }
}

#[test]
fn queues_under_every_scheduler_are_serialisable() {
    let workload = wl::queues(&wl::QueueParams {
        queues: 2,
        producers: 10,
        consumers: 10,
        preload: 6,
        seed: 9,
    });
    for spec in specs() {
        let report = runtime(spec, 9).run(&workload).unwrap();
        verify(&report);
    }
}

#[test]
fn dictionaries_under_every_scheduler_are_serialisable() {
    let workload = wl::dictionary(&wl::DictionaryParams {
        dictionaries: 2,
        keys: 24,
        transactions: 20,
        ops_per_txn: 3,
        key_skew: 0.9,
        ..Default::default()
    });
    for spec in specs() {
        let report = runtime(spec, 13).run(&workload).unwrap();
        verify(&report);
    }
}

#[test]
fn nested_orders_with_parallel_items_are_serialisable() {
    let workload = wl::orders(&wl::OrdersParams {
        transactions: 16,
        items_per_order: 4,
        parallel_items: true,
        ..Default::default()
    });
    for spec in specs() {
        let report = runtime(spec, 21).run(&workload).unwrap();
        verify(&report);
        // Orders nest: the history contains strictly more method executions
        // than top-level transactions.
        assert!(report.history.exec_count() > report.metrics.committed);
    }
}

#[test]
fn strict_lock_schedulers_never_cascade() {
    let workload = wl::banking(&wl::BankingParams {
        accounts: 3,
        transactions: 30,
        skew: 1.2,
        audit_fraction: 0.3,
        ..Default::default()
    });
    for spec in [
        SchedulerSpec::n2pl_operation(),
        SchedulerSpec::n2pl_step(),
        SchedulerSpec::flat_exclusive(),
    ] {
        let report = runtime(spec, 31).run(&workload).unwrap();
        assert_eq!(
            report.metrics.cascading_aborts, 0,
            "{}: strict locking must not cascade",
            report.scheduler
        );
    }
}

#[test]
fn flat_baseline_blocks_more_than_semantic_locking_on_commuting_work() {
    // The headline qualitative claim: semantic, nested CC admits more
    // concurrency than the flat object-as-data-item baseline.
    let workload = wl::counters(&wl::CounterParams {
        counters: 2,
        transactions: 24,
        touches_per_txn: 2,
        read_fraction: 0.0,
        skew: 1.5,
        seed: 3,
    });
    let faceoff = runtime(SchedulerSpec::flat_exclusive(), 3)
        .compare(
            &workload,
            &[
                SchedulerSpec::flat_exclusive(),
                SchedulerSpec::n2pl_operation(),
            ],
        )
        .unwrap();
    let [flat, nested] = faceoff.reports() else {
        panic!("expected two reports");
    };
    assert!(flat.metrics.blocked_events > nested.metrics.blocked_events);
    assert!(nested.throughput() >= flat.throughput());
    // Semantic locking never blocks on pure increments.
    assert_eq!(nested.metrics.blocked_events, 0);
    assert_eq!(
        faceoff.best_by_throughput().unwrap().scheduler,
        nested.scheduler
    );
}

#[test]
fn identical_seeds_give_identical_runs() {
    let workload = wl::orders(&wl::OrdersParams::default());
    let a = runtime(SchedulerSpec::n2pl_step(), 77)
        .run(&workload)
        .unwrap();
    let b = runtime(SchedulerSpec::n2pl_step(), 77)
        .run(&workload)
        .unwrap();
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
    assert_eq!(a.metrics.committed, b.metrics.committed);
    assert_eq!(a.metrics.blocked_events, b.metrics.blocked_events);
    assert_eq!(a.history.step_count(), b.history.step_count());
}

#[test]
fn faceoff_covers_every_spec_and_renders() {
    let workload = wl::counters(&wl::CounterParams {
        counters: 2,
        transactions: 8,
        touches_per_txn: 2,
        read_fraction: 0.2,
        skew: 0.5,
        seed: 19,
    });
    let all = specs();
    let faceoff = Runtime::faceoff(&workload, &all).unwrap();
    assert_eq!(faceoff.reports().len(), all.len());
    faceoff.assert_all_serialisable();
    let table = faceoff.render_table();
    for report in faceoff.reports() {
        assert!(
            table.contains(&report.scheduler),
            "missing {}",
            report.scheduler
        );
    }
}
