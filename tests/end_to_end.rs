//! End-to-end integration tests: every scheduler, every workload generator,
//! with post-hoc verification of the committed history against the paper's
//! theorems.

use obase::exec::MixedScheduler;
use obase::prelude::*;
use obase::workload as wl;
use obase_core::sched::Scheduler;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(FlatObjectScheduler::exclusive()),
        Box::new(FlatObjectScheduler::read_write()),
        Box::new(N2plScheduler::operation_locks()),
        Box::new(N2plScheduler::step_locks()),
        Box::new(NtoScheduler::conservative()),
        Box::new(NtoScheduler::provisional()),
        Box::new(SgtCertifier::new()),
        Box::new(MixedScheduler::new().with_default_intra(Box::new(N2plScheduler::step_locks()))),
    ]
}

fn verify(result: &RunResult, label: &str) {
    assert!(
        obase::core::legality::is_legal(&result.history),
        "{label}: committed history is not legal"
    );
    assert!(
        obase::core::sg::certifies_serialisable(&result.history),
        "{label}: committed history has a cyclic serialisation graph"
    );
    assert!(
        obase::core::local_graphs::theorem5_condition_holds(&result.history),
        "{label}: Theorem 5 condition violated"
    );
    assert!(!result.metrics.timed_out, "{label}: run timed out");
}

fn config(seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        clients: 4,
        ..Default::default()
    }
}

#[test]
fn banking_under_every_scheduler_is_serialisable() {
    let workload = wl::banking(&wl::BankingParams {
        accounts: 6,
        transactions: 24,
        skew: 0.6,
        ..Default::default()
    });
    for mut s in schedulers() {
        let result = run(&workload, s.as_mut(), &config(101));
        let label = result.metrics.scheduler.clone();
        verify(&result, &label);
        assert!(
            result.metrics.committed + result.metrics.gave_up == 24,
            "{label}: every transaction either commits or exhausts its retries"
        );
    }
}

#[test]
fn counters_under_every_scheduler_preserve_the_sum() {
    let workload = wl::counters(&wl::CounterParams {
        counters: 4,
        transactions: 20,
        touches_per_txn: 2,
        read_fraction: 0.0,
        skew: 1.0,
        seed: 7,
    });
    for mut s in schedulers() {
        let result = run(&workload, s.as_mut(), &config(7));
        let label = result.metrics.scheduler.clone();
        verify(&result, &label);
        // Each committed transaction adds exactly 2 across the counters.
        let finals = obase::core::replay::final_states(&result.history).unwrap();
        let total: i64 = finals.values().filter_map(Value::as_int).sum();
        assert_eq!(
            total,
            2 * result.metrics.committed as i64,
            "{label}: increments lost or duplicated"
        );
    }
}

#[test]
fn queues_under_every_scheduler_are_serialisable() {
    let workload = wl::queues(&wl::QueueParams {
        queues: 2,
        producers: 10,
        consumers: 10,
        preload: 6,
        seed: 9,
    });
    for mut s in schedulers() {
        let result = run(&workload, s.as_mut(), &config(9));
        let label = result.metrics.scheduler.clone();
        verify(&result, &label);
    }
}

#[test]
fn dictionaries_under_every_scheduler_are_serialisable() {
    let workload = wl::dictionary(&wl::DictionaryParams {
        dictionaries: 2,
        keys: 24,
        transactions: 20,
        ops_per_txn: 3,
        key_skew: 0.9,
        ..Default::default()
    });
    for mut s in schedulers() {
        let result = run(&workload, s.as_mut(), &config(13));
        let label = result.metrics.scheduler.clone();
        verify(&result, &label);
    }
}

#[test]
fn nested_orders_with_parallel_items_are_serialisable() {
    let workload = wl::orders(&wl::OrdersParams {
        transactions: 16,
        items_per_order: 4,
        parallel_items: true,
        ..Default::default()
    });
    for mut s in schedulers() {
        let result = run(&workload, s.as_mut(), &config(21));
        let label = result.metrics.scheduler.clone();
        verify(&result, &label);
        // Orders nest: the history contains strictly more method executions
        // than top-level transactions.
        assert!(result.history.exec_count() > result.metrics.committed);
    }
}

#[test]
fn strict_lock_schedulers_never_cascade() {
    let workload = wl::banking(&wl::BankingParams {
        accounts: 3,
        transactions: 30,
        skew: 1.2,
        audit_fraction: 0.3,
        ..Default::default()
    });
    for mut s in [
        Box::new(N2plScheduler::operation_locks()) as Box<dyn Scheduler>,
        Box::new(N2plScheduler::step_locks()),
        Box::new(FlatObjectScheduler::exclusive()),
    ] {
        let result = run(&workload, s.as_mut(), &config(31));
        assert_eq!(
            result.metrics.cascading_aborts, 0,
            "{}: strict locking must not cascade",
            result.metrics.scheduler
        );
    }
}

#[test]
fn flat_baseline_blocks_more_than_semantic_locking_on_commuting_work() {
    // The headline qualitative claim: semantic, nested CC admits more
    // concurrency than the flat object-as-data-item baseline.
    let workload = wl::counters(&wl::CounterParams {
        counters: 2,
        transactions: 24,
        touches_per_txn: 2,
        read_fraction: 0.0,
        skew: 1.5,
        seed: 3,
    });
    let flat = run(
        &workload,
        &mut FlatObjectScheduler::exclusive(),
        &config(3),
    );
    let nested = run(&workload, &mut N2plScheduler::operation_locks(), &config(3));
    assert!(flat.metrics.blocked_events > nested.metrics.blocked_events);
    assert!(nested.metrics.throughput() >= flat.metrics.throughput());
    // Semantic locking never blocks on pure increments.
    assert_eq!(nested.metrics.blocked_events, 0);
}

#[test]
fn identical_seeds_give_identical_runs() {
    let workload = wl::orders(&wl::OrdersParams::default());
    let a = run(&workload, &mut N2plScheduler::step_locks(), &config(77));
    let b = run(&workload, &mut N2plScheduler::step_locks(), &config(77));
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
    assert_eq!(a.metrics.committed, b.metrics.committed);
    assert_eq!(a.metrics.blocked_events, b.metrics.blocked_events);
    assert_eq!(a.history.step_count(), b.history.step_count());
}
