//! Observability does not perturb correctness, and traces mean something.
//!
//! Three demands on the `obase-obs` layer:
//!
//! 1. **Equivalence under observation** — a run with a full
//!    `ChromeTraceObserver` attached passes the same serialisability oracle
//!    as an unobserved run, on the simulator and the parallel backend alike
//!    (observation must never change what the engines admit).
//! 2. **Traces round-trip and are complete** — the exported trace-event JSON
//!    parses back through `obase-ser` and carries at least one transaction
//!    span per committed transaction, plus the per-lane thread metadata the
//!    Perfetto UI needs.
//! 3. **Latency reports are coherent** — every run observed at
//!    `Observe::Latency` yields an end-to-end histogram whose sample count
//!    covers the committed transactions, and the phase set is stable.

use obase::prelude::*;
use obase::workload as wl;
use obase_runtime::{ChromeTraceObserver, Observe};
use obase_ser::Json;
use std::sync::Arc;

fn workload() -> WorkloadSpec {
    wl::banking(&wl::BankingParams {
        accounts: 6,
        transactions: 12,
        skew: 0.7,
        seed: 4242,
        ..Default::default()
    })
}

fn observed_runtime(backend: ExecutionBackend, observe: Observe) -> Runtime {
    Runtime::builder()
        .scheduler(SchedulerSpec::n2pl_operation())
        .clients(4)
        .seed(4242)
        .retries(32)
        .backend(backend)
        .verify(Verify::Full)
        .observe(observe)
        .build()
        .expect("valid configuration")
}

/// The trace-event JSON's complete ("X") spans with the given category.
fn spans_with_cat(trace: &Json, cat: &str) -> usize {
    trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("cat").and_then(Json::as_str) == Some(cat)
        })
        .count()
}

#[test]
fn observed_runs_stay_serialisable_on_both_backends() {
    for backend in [
        ExecutionBackend::Simulated,
        ExecutionBackend::Parallel { workers: 4 },
    ] {
        let tracer = Arc::new(ChromeTraceObserver::new());
        let report = observed_runtime(backend.clone(), Observe::Trace(tracer.clone()))
            .run(&workload())
            .expect("observed run completes");
        report.assert_serialisable();
        assert!(
            report.metrics.committed > 0,
            "{}: nothing committed",
            backend.label()
        );
        // The trace observer fed the latency report too.
        let latency = report.latency().expect("Trace plan derives latency");
        assert!(
            latency.e2e().count() >= report.metrics.committed as u64,
            "{}: e2e histogram has {} samples for {} commits",
            backend.label(),
            latency.e2e().count(),
            report.metrics.committed
        );
    }
}

#[test]
fn traces_round_trip_with_a_span_per_committed_transaction() {
    let tracer = Arc::new(ChromeTraceObserver::new());
    let report = observed_runtime(
        ExecutionBackend::Parallel { workers: 4 },
        Observe::Trace(tracer.clone()),
    )
    .run(&workload())
    .expect("traced parallel run completes");
    report.assert_serialisable();

    let text = tracer.trace_json().to_string();
    let trace = Json::parse(&text).expect("trace JSON parses back through obase-ser");
    assert!(
        spans_with_cat(&trace, "txn") >= report.metrics.committed,
        "expected ≥ {} txn spans",
        report.metrics.committed
    );
    // Perfetto needs the per-lane thread-name metadata; a parallel trace
    // names at least one worker lane and the control-plane lane.
    let events = trace.get("traceEvents").and_then(Json::as_array).unwrap();
    let lane_named = |needle: &str| {
        events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.contains(needle))
        })
    };
    assert!(lane_named("worker-"), "no worker lane in the trace");
    assert!(lane_named("control"), "no control-plane lane in the trace");
}

#[test]
fn durable_traces_carry_fsync_spans() {
    let dir = obase::wal::scratch_dir("obs-test");
    let tracer = Arc::new(ChromeTraceObserver::new());
    let report = observed_runtime(
        ExecutionBackend::Durable {
            dir: dir.clone(),
            group_commit: 4,
        },
        Observe::Trace(tracer.clone()),
    )
    .run(&workload())
    .expect("traced durable run completes");
    report.assert_serialisable();
    let trace = tracer.trace_json();
    assert!(
        spans_with_cat(&trace, "wal") >= 1,
        "durable trace has no fsync span"
    );
    let latency = report.latency().expect("Trace plan derives latency");
    let fsync = latency.phase("fsync").expect("fsync phase present");
    assert!(fsync.count() >= 1, "no fsync samples in the latency report");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latency_reports_expose_stable_phases_and_json() {
    let report = observed_runtime(ExecutionBackend::Simulated, Observe::Latency)
        .run(&workload())
        .expect("observed run completes");
    let latency = report.latency().expect("Latency plan fills the report");
    for phase in obase::obs::report::PHASES {
        assert!(latency.phase(phase).is_some(), "phase {phase} missing");
    }
    // Percentiles are monotone and the report embeds into the run JSON.
    let e2e = latency.e2e();
    assert!(e2e.percentile(0.5) <= e2e.percentile(0.99));
    assert!(e2e.percentile(0.99) <= e2e.percentile(0.999));
    let json = report.to_json();
    let p99 = json
        .get("latency")
        .and_then(|l| l.get("phases"))
        .and_then(|p| p.get("e2e"))
        .and_then(|h| h.get("p99"))
        .and_then(Json::as_int)
        .expect("latency.phases.e2e.p99 in the report JSON");
    assert_eq!(p99, e2e.percentile(0.99) as i64);
    // The unobserved default stays latency-free.
    let bare = Runtime::builder()
        .scheduler(SchedulerSpec::n2pl_operation())
        .build()
        .unwrap()
        .run(&workload())
        .unwrap();
    assert!(bare.latency().is_none());
}

#[test]
fn snapshot_reads_surface_in_latency_and_trace() {
    let s = obase::scenario::by_name("read-mostly-dict").expect("built-in");
    let tracer = Arc::new(ChromeTraceObserver::new());
    let report = s
        .run_with(
            &s.specs[0],
            ExecutionBackend::Simulated,
            Observe::Trace(tracer.clone()),
            true,
        )
        .expect("observed MVCC run completes");
    report.assert_serialisable();
    assert!(
        report.metrics.snapshot_reads > 0,
        "the read-mostly mix produced no snapshot reads"
    );
    // Snapshot transactions get no Admit and skip the scheduler phases, so
    // they land in their own `snapshot_read` histogram: submit → commit.
    let latency = report.latency().expect("Trace plan derives latency");
    let snap = latency.phase("snapshot_read").expect("snapshot_read phase");
    assert!(
        snap.count() >= report.metrics.read_only_txns as u64,
        "snapshot_read histogram has {} samples for {} snapshot commits",
        snap.count(),
        report.metrics.read_only_txns
    );
    // And they leave an instant marker on the timeline.
    let text = tracer.trace_json().to_string();
    assert!(
        text.contains("snapshot"),
        "no snapshot instants in the exported trace"
    );
}
