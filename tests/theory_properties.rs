//! Property-style tests of the core theory over randomly generated (seeded,
//! reproducible) interleavings: Theorem 1 (replay determinism), Theorem 2
//! (the serialisation-graph test is sound) and Theorem 5 (the per-object
//! condition is sound), plus the soundness of every ADT conflict
//! specification. Engine-level properties run through the `Runtime` facade.

use obase::adt;
use obase::prelude::*;
use obase_rng::{ChaCha8Rng, Rng, SeedableRng};
use std::sync::Arc;

/// A small random-interleaving generator: `txns` transactions, each touching
/// a random subset of objects with random operations, interleaved according
/// to a random schedule. Returns a legal history by construction (return
/// values are computed by replaying against tracked state).
fn random_history(
    object_kinds: &[u8],
    txns: usize,
    ops_per_txn: usize,
    schedule: &[u8],
) -> History {
    let mut base = ObjectBase::new();
    let objects: Vec<ObjectId> = object_kinds
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let ty: TypeHandle = match kind % 4 {
                0 => Arc::new(adt::Counter::default()),
                1 => Arc::new(adt::Register::default()),
                2 => Arc::new(adt::Account::with_initial(20)),
                _ => Arc::new(adt::FifoQueue),
            };
            base.add_object(format!("o{i}"), ty)
        })
        .collect();
    let mut b = HistoryBuilder::new(Arc::new(base));

    // Per transaction, a cursor over the operations it will perform.
    struct Txn {
        exec: ExecId,
        remaining: usize,
    }
    let mut live: Vec<Txn> = (0..txns)
        .map(|i| Txn {
            exec: b.begin_top_level(format!("T{i}")),
            remaining: ops_per_txn,
        })
        .collect();

    let mut cursor = 0usize;
    while live.iter().any(|t| t.remaining > 0) {
        let pick = schedule.get(cursor).copied().unwrap_or(0) as usize;
        cursor += 1;
        let idx = pick % live.len();
        if live[idx].remaining == 0 {
            // Find the next transaction that still has work.
            let Some(idx2) = live.iter().position(|t| t.remaining > 0) else {
                break;
            };
            advance(&mut b, &objects, &mut live[idx2], pick);
        } else {
            advance(&mut b, &objects, &mut live[idx], pick);
        }
    }

    fn advance(b: &mut HistoryBuilder, objects: &[ObjectId], txn: &mut Txn, salt: usize) {
        txn.remaining -= 1;
        let object = objects[salt % objects.len()];
        let ty = b.base().type_of(object);
        let ops = ty.sample_operations();
        let op = ops[(salt / 3) % ops.len()].clone();
        let (msg, child) = b.invoke(txn.exec, object, "m", []);
        // Some operations may be inapplicable to the current state (e.g. a
        // malformed argument); sample operations are always applicable.
        b.local_applied(child, op).expect("sample op applies");
        b.complete_invoke(msg, Value::Unit);
    }

    b.build()
}

/// Every randomly generated interleaving is a legal history, its final state
/// does not depend on the chosen topological sort (Theorem 1), and if its
/// serialisation graph is acyclic then the constructed equivalent serial
/// history verifies (Theorem 2), in which case the Theorem 5 condition's
/// verdict is consistent with serialisability.
#[test]
fn random_interleavings_respect_the_theorems() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7E08);
    for case in 0..48 {
        let object_kinds: Vec<u8> = (0..rng.gen_range(1..4usize))
            .map(|_| rng.gen_range(0..4u32) as u8)
            .collect();
        let txns = rng.gen_range(1..4usize);
        let ops = rng.gen_range(1..4usize);
        let schedule: Vec<u8> = (0..rng.gen_range(1..64usize))
            .map(|_| rng.gen_range(0..256u32) as u8)
            .collect();

        let h = random_history(&object_kinds, txns, ops, &schedule);
        assert!(obase::core::legality::is_legal(&h), "case {case}");

        // Theorem 1: replay determinism across linear extensions.
        for o in h.objects_touched() {
            assert!(
                obase::core::replay::theorem1_holds(&h, o, 24),
                "case {case}: Theorem 1 fails on {o}"
            );
        }

        let analysis = obase::core::sg::analyse(&h);
        if analysis.acyclic {
            // Theorem 2, executed: the constructed witness is legal, serial
            // and equivalent.
            assert_eq!(analysis.witness_verified, Some(true), "case {case}");
            // And the bounded brute-force oracle agrees when it can afford
            // the search space.
            if h.exec_count() <= 7 {
                assert!(
                    obase::core::equivalence::is_serialisable_bruteforce(&h, 512),
                    "case {case}: oracle disagrees with the SG test"
                );
            }
        }

        // Theorem 5: the per-object condition is sufficient for
        // serialisability, so whenever it holds and the history is small
        // enough to decide, the brute-force oracle finds a witness.
        if obase::core::local_graphs::theorem5_condition_holds(&h) && h.exec_count() <= 7 {
            assert!(
                obase::core::equivalence::is_serialisable_bruteforce(&h, 512),
                "case {case}: oracle disagrees with the Theorem 5 condition"
            );
        }
    }
}

/// The committed history of an engine run under nested 2PL is always
/// serialisable, whatever the interleaving seed (the executable Theorem 3).
#[test]
fn n2pl_runs_are_always_serialisable() {
    let wl = obase::workload::banking(&obase::workload::BankingParams {
        accounts: 3,
        transactions: 8,
        skew: 1.0,
        ..Default::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(0x52D1);
    for _ in 0..24 {
        let seed = rng.next_u64();
        let report = Runtime::builder()
            .scheduler(SchedulerSpec::n2pl_operation())
            .clients(4)
            .seed(seed)
            .build()
            .unwrap()
            .run(&wl)
            .unwrap();
        assert!(
            obase::core::sg::certifies_serialisable(&report.history),
            "seed {seed}"
        );
    }
}

/// Theorem 3 holds on genuinely concurrent executions too: the same N2PL
/// property over the multi-threaded backend, where the interleaving comes
/// from the OS scheduler instead of a seed.
#[test]
fn n2pl_parallel_runs_are_always_serialisable() {
    let wl = obase::workload::banking(&obase::workload::BankingParams {
        accounts: 3,
        transactions: 8,
        skew: 1.0,
        ..Default::default()
    });
    for round in 0..24 {
        let report = Runtime::builder()
            .scheduler(SchedulerSpec::n2pl_operation())
            .backend(ExecutionBackend::Parallel { workers: 4 })
            .retries(64)
            .build()
            .unwrap()
            .run(&wl)
            .unwrap();
        assert!(
            obase::core::sg::certifies_serialisable(&report.history),
            "round {round}"
        );
        assert_eq!(report.metrics.cascading_aborts, 0, "round {round}");
    }
}

/// Same for nested timestamp ordering (the executable Theorem 4).
#[test]
fn nto_runs_are_always_serialisable() {
    let wl = obase::workload::counters(&obase::workload::CounterParams {
        counters: 2,
        transactions: 8,
        touches_per_txn: 2,
        read_fraction: 0.4,
        skew: 1.0,
        seed: 5,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(0x0470);
    for _ in 0..24 {
        let seed = rng.next_u64();
        let report = Runtime::builder()
            .scheduler(SchedulerSpec::nto_conservative())
            .clients(4)
            .seed(seed)
            .build()
            .unwrap()
            .run(&wl)
            .unwrap();
        assert!(
            obase::core::sg::certifies_serialisable(&report.history),
            "seed {seed}"
        );
    }
}

#[test]
fn adt_conflict_specifications_are_sound() {
    for ty in adt::all_types() {
        let violations = obase::core::conflict::validate_conflict_spec(ty.as_ref(), 2);
        assert!(
            violations.is_empty(),
            "{}: {:?}",
            ty.type_name(),
            violations.first()
        );
    }
}

/// The MVCC classifier trusts `op_is_readonly` to admit operations to the
/// scheduler-free snapshot path, so the declaration must agree with the
/// Definition-3 ground truth on every ADT. Soundness (hard): a declared
/// read-only operation must be an identity on every reachable state it
/// applies to, and must commute with itself under the state-based conflict
/// checker. Completeness (per operation family): an operation *name* whose
/// every sampled instance is an identity everywhere must be declared
/// read-only — a mutator family may contain degenerate identities (`Add 0`)
/// without earning the declaration, but a genuine observer may not be
/// under-declared. The distinguished abort operation is "read-only" by
/// convention (it never mutates) but the classifier excludes it separately —
/// asserted here so the convention cannot silently drift.
#[test]
fn readonly_declarations_match_the_definition3_checker() {
    use obase::core::conflict::{achievable_steps, reachable_states, steps_commute_on_state};
    use std::collections::BTreeMap;

    for ty in adt::all_types() {
        let name = ty.type_name();
        let states = reachable_states(ty.as_ref(), 3);
        assert!(!states.is_empty(), "{name}: no reachable states");
        // (identity on every applicable reachable state?, declared?) per op.
        let mut families: BTreeMap<String, Vec<(bool, bool)>> = BTreeMap::new();
        for op in ty.sample_operations() {
            let declared = ty.op_is_readonly(&op);
            let mut applies_somewhere = false;
            let mut identity_everywhere = true;
            for s in &states {
                if let Ok((s2, _)) = ty.apply(s, &op) {
                    applies_somewhere = true;
                    if &s2 != s {
                        identity_everywhere = false;
                    }
                }
            }
            assert!(applies_somewhere, "{name}: sample op {op:?} never applies");
            assert!(
                !declared || identity_everywhere,
                "{name}: op_is_readonly({op:?}) but the op mutates some \
                 reachable state — the snapshot path would serve stale data"
            );
            families
                .entry(op.name.clone())
                .or_default()
                .push((identity_everywhere, declared));
            if !declared {
                continue;
            }
            // Definition 3 (return-value-aware commutativity): a read-only
            // step conflicts with nothing it returns the same answer next
            // to — in particular it must commute with itself on every state.
            for step in achievable_steps(ty.as_ref(), &states, &op) {
                for s in &states {
                    let outcome = steps_commute_on_state(ty.as_ref(), s, &step, &step);
                    assert!(
                        !outcome.is_conflict(),
                        "{name}: read-only step {step:?} conflicts with itself \
                         on state {s:?}: {outcome:?}"
                    );
                }
            }
        }
        for (op_name, instances) in families {
            if instances.iter().all(|&(identity, _)| identity) {
                assert!(
                    instances.iter().all(|&(_, declared)| declared),
                    "{name}: every sampled {op_name:?} is an identity on \
                     every reachable state, yet op_is_readonly denies it — \
                     an observer family is being kept off the snapshot path"
                );
            }
        }
        // The abort pseudo-operation is reported read-only by every ADT
        // (it mutates nothing), yet it signals failure: the snapshot
        // classifier must reject it regardless, which it can only do if
        // `is_abort` stays distinguishable.
        let abort = obase::core::op::Operation::abort();
        assert!(
            ty.op_is_readonly(&abort),
            "{name}: the abort operation must read as non-mutating"
        );
        assert!(abort.is_abort());
    }
}
